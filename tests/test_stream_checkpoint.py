"""Unit tests for the checkpoint coordinator and state backend."""


from repro.config import CheckpointConfig, ClusterConfig, CostModel
from repro.core import MitigationPlan
from repro.stream import ConstantSource, StageSpec, StreamJob


def make_job(interval=4.0, allow_overlap=True, mitigation=None, rate=2000.0):
    return StreamJob(
        stages=[
            StageSpec("s", parallelism=4, state_entry_bytes=200.0,
                      distinct_keys=2000),
        ],
        source=ConstantSource(rate),
        cluster=ClusterConfig(num_nodes=1, cores_per_node=4),
        checkpoint=CheckpointConfig(interval_s=interval, first_at_s=interval,
                                    allow_overlap=allow_overlap),
        cost=CostModel(cpu_seconds_per_message=0.0002),
        mitigation=mitigation,
        seed=5,
    )


def test_checkpoints_fire_on_schedule():
    job = make_job(interval=4.0)
    job.run(21.0)
    times = job.coordinator.checkpoint_times()
    assert times == [4.0, 8.0, 12.0, 16.0, 20.0]


def test_checkpoint_records_bytes_and_flush_counts():
    job = make_job()
    job.run(13.0)
    completed = job.coordinator.completed
    assert completed, "no checkpoint completed"
    record = completed[0]
    assert record.flushes == 4  # one flush per instance
    assert record.bytes > 0
    assert record.duration is not None and record.duration >= 0.0


def test_checkpoint_triggers_hdfs_backup():
    job = make_job()
    job.run(13.0)
    assert len(job.hdfs.completed) >= 2
    checkpoint_id, nbytes, submit, finish = job.hdfs.completed[0]
    assert nbytes > 0 and finish >= submit
    assert job.hdfs.recovery_point_lag() is not None


def test_every_flush_bumps_l0_counter_until_compaction():
    job = make_job()
    job.run(13.0)  # 3 checkpoints < trigger (4): no compaction yet
    counts = [inst.store.l0_file_count for inst in job.stage("s").instances]
    assert counts == [3, 3, 3, 3]
    assert len(job.collector.spans.spans(kind="compaction")) == 0


def test_fourth_checkpoint_triggers_compaction_burst():
    job = make_job()
    job.run(22.0)  # 5 checkpoints: compactions after the 4th
    compactions = job.collector.spans.spans(kind="compaction")
    assert len(compactions) == 4  # one per instance
    for instance in job.stage("s").instances:
        assert instance.store.l0_file_count <= 1


def test_mitigation_delay_postpones_compaction_submission():
    immediate = make_job()
    immediate.run(18.0)
    delayed = make_job(mitigation=MitigationPlan(compaction_delay_s=1.5))
    delayed.run(18.0)
    first_immediate = min(
        s.submit for s in immediate.collector.spans.spans(kind="compaction")
    )
    first_delayed = min(
        s.submit for s in delayed.collector.spans.spans(kind="compaction")
    )
    assert first_delayed >= first_immediate + 1.0


def test_randomized_trigger_spreads_compactions_across_checkpoints():
    job = make_job(mitigation=MitigationPlan(randomize_compaction_trigger=True))
    job.run(60.0)
    spans = job.collector.spans
    counts = spans.per_cycle_counts(job.coordinator.checkpoint_times(),
                                    kind="compaction")
    busy_checkpoints = sum(1 for c in counts.values() if c > 0)
    # the static trigger would concentrate everything on every 4th CP;
    # randomization spreads over more checkpoints
    assert busy_checkpoints >= 4


def test_disallow_overlap_rejects_concurrent_trigger():
    job = make_job(interval=4.0, allow_overlap=False)
    fired = {}

    def double_trigger():
        fired["first"] = job.coordinator.trigger()
        # first checkpoint's flushes are still in flight
        fired["second"] = job.coordinator.trigger()

    job.sim.schedule(2.0, double_trigger)
    job.run(3.0)
    assert fired["first"] is not None
    assert fired["second"] is None
    assert job.coordinator.skipped_overlapping == 1


def test_instances_block_during_flush():
    job = make_job()
    blocked_seen = []

    def probe():
        blocked_seen.append(
            any(inst.blocked for inst in job.stage("s").instances)
        )

    job.sim.schedule(4.001, probe)  # right after the first checkpoint
    job.run(6.0)
    assert blocked_seen == [True]


def test_stateless_stage_not_checkpointed():
    job = StreamJob(
        stages=[StageSpec("stateless", parallelism=2, stateful=False)],
        source=ConstantSource(100.0),
        cluster=ClusterConfig(num_nodes=1, cores_per_node=4),
        checkpoint=CheckpointConfig(interval_s=2.0, first_at_s=2.0),
        seed=1,
    )
    job.run(9.0)
    assert len(job.collector.spans) == 0
    assert all(r.flushes == 0 for r in job.coordinator.completed)
