"""Crash-recovery equivalence: for any crash schedule, the recovered
WordCount produces *exactly* the fault-free reference counts.

This is the exactly-once property of the recovery path implemented in
:mod:`repro.faults.pipeline`: a coordinated checkpoint commits state
snapshots and Kafka offsets atomically, so rewinding both to the same
checkpoint and replaying the log reproduces the reference reduction —
no record lost, none double-counted.  With a WAL enabled, the log
replays the puts the memtable lost instead of rewinding the offsets,
and the property must still hold.

This file is the CI ``faults-smoke`` job's main payload.
"""

import pytest

from repro.faults import CheckpointedWordCount
from repro.workloads import SentenceGenerator, count_words

SEEDS = tuple(range(10))


def workload(seed, sentences=220):
    gen = SentenceGenerator(vocabulary_size=300, words_per_sentence=6,
                            seed=seed)
    return list(gen.sentences(sentences))


def run_pipeline(records, crash_at_steps=(), wal_enabled=False, batch=10,
                 **kwargs):
    pipeline = CheckpointedWordCount(partitions=2, wal_enabled=wal_enabled)
    pipeline.produce(records)
    counts = pipeline.run_to_completion(batch=batch,
                                        crash_at_steps=crash_at_steps,
                                        **kwargs)
    return pipeline, counts


@pytest.mark.parametrize("seed", SEEDS)
def test_crash_recovery_matches_fault_free_counts(seed):
    records = workload(seed)
    reference = count_words(records)
    # crash twice: once mid-stream right after a checkpoint boundary,
    # once later between checkpoints (uncommitted polls get replayed)
    pipeline, counts = run_pipeline(records, crash_at_steps=(3, 8))
    assert pipeline.crashes == 2
    assert pipeline.checkpoints >= 2
    assert counts == reference


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_crash_before_first_checkpoint_cold_starts(seed):
    # a crash before any checkpoint completes must rewind to offset 0
    # and empty state — a cold start, not data loss or double counting
    records = workload(seed, sentences=120)
    reference = count_words(records)
    pipeline, counts = run_pipeline(records, crash_at_steps=(1,),
                                    checkpoint_every=4)
    assert pipeline.crashes == 1
    assert counts == reference


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_wal_recovery_matches_fault_free_counts(seed):
    # with a WAL the crash replays the log instead of rewinding
    # offsets; the frontier survives and the counts still match
    records = workload(seed)
    reference = count_words(records)
    pipeline, counts = run_pipeline(records, crash_at_steps=(2, 5),
                                    wal_enabled=True)
    assert pipeline.crashes == 2
    assert counts == reference


def test_repeated_crashes_every_other_step():
    # a pathological schedule: crash after almost every poll; progress
    # is only what checkpoints persist, but the answer is still exact
    records = workload(seed=99, sentences=200)
    reference = count_words(records)
    pipeline, counts = run_pipeline(
        records, crash_at_steps=tuple(range(2, 40, 2)), checkpoint_every=1,
        batch=8,
    )
    assert pipeline.crashes >= 5
    assert counts == reference


def test_fault_free_run_matches_reference_too():
    records = workload(seed=0)
    _, counts = run_pipeline(records)
    assert counts == count_words(records)
