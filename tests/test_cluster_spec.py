"""Validation, serialization and cache-key behavior of the cluster specs."""

import json
from pathlib import Path

import pytest

from repro.cluster import ClusterSpec, MembershipEvent, NodeSpec
from repro.errors import ConfigurationError
from repro.experiments.parallel import cache_key_from_dict
from repro.scenarios import ScenarioSpec, scenario
from repro.serialize import roundtrip

GOLDEN_KEYS = Path(__file__).parent / "data" / "scenario_cache_keys.json"


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------


def test_node_spec_rejects_negative_cores():
    with pytest.raises(ConfigurationError):
        NodeSpec(cores=-1)


def test_membership_event_rejects_unknown_action():
    with pytest.raises(ConfigurationError):
        MembershipEvent(action="reboot")


def test_membership_event_rejects_zero_count():
    with pytest.raises(ConfigurationError):
        MembershipEvent(action="join", count=0)


@pytest.mark.parametrize("kwargs", [
    {"heartbeat_interval_s": 0.0},
    {"phi_threshold": -1.0},
    {"min_std_s": 0.0},
    {"history_window": 1},
    {"migration_bandwidth_mb_s": 0.0},
    {"transfer_deadline_s": 0.0},
    {"breaker_failures": 0},
    {"max_parallel_migrations": 0},
])
def test_cluster_spec_rejects_bad_knobs(kwargs):
    with pytest.raises(ConfigurationError):
        ClusterSpec(**kwargs)


def test_cluster_spec_coerces_nested_dicts():
    spec = ClusterSpec(
        node={"cores": 8},
        retry={"max_attempts": 2, "base_delay_s": 0.1},
        events=[{"action": "join", "at_s": 10.0, "count": 2}],
    )
    assert spec.node == NodeSpec(cores=8)
    assert spec.retry.max_attempts == 2
    assert spec.events == (MembershipEvent(action="join", at_s=10.0, count=2),)


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------


def test_cluster_spec_roundtrips():
    spec = ClusterSpec(
        heartbeat_interval_s=0.25,
        phi_threshold=10.0,
        events=(
            MembershipEvent(action="join", at_s=20.0, count=2),
            MembershipEvent(action="leave", at_s=80.0, count=2),
        ),
    )
    assert ClusterSpec.from_dict(spec.to_dict()) == spec
    assert ClusterSpec.from_dict(
        json.loads(json.dumps(spec.to_dict()))
    ) == spec


def test_cluster_spec_registered_with_serializer():
    spec = ClusterSpec(events=(MembershipEvent(at_s=5.0),))
    assert roundtrip(spec) == spec


def test_scenario_without_cluster_serializes_without_the_key():
    """Legacy scenarios must keep their dict (and cache key) unchanged."""
    spec = ScenarioSpec(name="plain")
    assert "cluster" not in spec.to_dict()


def test_scenario_with_cluster_roundtrips():
    spec = ScenarioSpec(
        name="elastic",
        cluster=ClusterSpec(events=(MembershipEvent(at_s=30.0),)),
    )
    payload = spec.to_dict()
    assert payload["cluster"]["events"][0]["at_s"] == 30.0
    assert ScenarioSpec.from_dict(json.loads(json.dumps(payload))) == spec


# ----------------------------------------------------------------------
# cache keys
# ----------------------------------------------------------------------


def test_cluster_enters_the_cache_key():
    plain = ScenarioSpec(name="x")
    elastic = ScenarioSpec(name="x", cluster=ClusterSpec())
    assert (cache_key_from_dict(plain.key_dict())
            != cache_key_from_dict(elastic.key_dict()))


def test_detector_tuning_changes_the_cache_key():
    a = ScenarioSpec(name="x", cluster=ClusterSpec(phi_threshold=8.0))
    b = ScenarioSpec(name="x", cluster=ClusterSpec(phi_threshold=12.0))
    assert (cache_key_from_dict(a.key_dict())
            != cache_key_from_dict(b.key_dict()))


def test_legacy_scenario_keys_survived_the_cluster_field():
    """Adding the optional cluster field must not move any pre-cluster
    scenario's cache address (stored results stay valid)."""
    goldens = json.loads(GOLDEN_KEYS.read_text())
    for name in ("baseline_traffic", "diurnal_flash", "windowed_join"):
        key = cache_key_from_dict(scenario(name).key_dict(), version="golden")
        assert key == goldens[name]


def test_elastic_scale_is_in_the_library():
    spec = scenario("elastic_scale")
    assert spec.cluster is not None
    actions = [event.action for event in spec.cluster.events]
    assert actions == ["join", "leave"]
    assert spec.faults is not None
    assert [f.kind for f in spec.faults.faults] == ["node_crash"]
