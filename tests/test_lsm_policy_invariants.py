"""The policy-invariant differential harness (the mitigation zoo's lock).

Every policy registered in :mod:`repro.lsm.policies` must preserve the
LSM correctness contract no matter how it reorders, splits or defers
compactions.  This suite drives each registered name through identical
workloads and holds it to:

* **contents equivalence** — same final key/value contents as the
  reference compactor (and as a plain dict model);
* **read-your-writes** — every written key readable at every step,
  including mid-compaction (picked but unfinished jobs);
* **level ordering** — ``check_invariants`` (L1+ non-overlap) after
  every full drain;
* **byte-identical reruns** — the same workload replayed gives the
  same pick sequence and the same final state;
* **exactly-once under crash-and-restore** — the checkpointed
  WordCount pipeline recovers reference counts under any crash
  schedule with the policy installed;
* **golden p99.9 tables** — library-scenario tails per policy match
  ``tests/data/policy_goldens.json`` bit-for-bit (regenerate after a
  deliberate change: ``PYTHONPATH=src python tests/make_policy_goldens.py``).
"""

import json
from pathlib import Path

import pytest

from repro.faults import CheckpointedWordCount
from repro.lsm import KiB, LSMOptions, LSMStore, policy_names
from repro.workloads import SentenceGenerator, count_words

GOLDENS = Path(__file__).parent / "data" / "policy_goldens.json"

POLICIES = policy_names()

#: Small store so a scripted workload exercises flushes, L0 merges and
#: deeper-level overflow within a few hundred operations.
SMALL = dict(
    write_buffer_size=2 * KiB,
    l0_compaction_trigger=2,
    max_bytes_for_level_base=4 * KiB,
)


def make_store(policy, name="store", **params):
    options = LSMOptions(compaction_policy=policy,
                         compaction_policy_params=params or None, **SMALL)
    return LSMStore(options, name=name)


def scripted_ops(rounds=30, keys=24):
    """A deterministic workload: skewed puts, deletes, periodic flushes."""
    ops = []
    for r in range(rounds):
        for i in range(6):
            key = f"k{(r * 7 + i * i) % keys:02d}".encode()
            ops.append(("put", key, f"v{r}.{i}".encode() * 3))
        if r % 3 == 0:
            ops.append(("delete", f"k{(r * 5) % keys:02d}".encode(), b""))
        ops.append(("flush", b"", b""))
    return ops


def apply_ops(store, ops, drain_every_flush=True, check_reads=False):
    """Replay *ops*; returns (dict model, pick trace)."""
    model = {}
    picks = []
    now = 0.0
    for op, key, value in ops:
        now += 1.0
        if op == "put":
            store.put(key, value)
            model[key] = value
        elif op == "delete":
            store.delete(key)
            model.pop(key, None)
        elif op == "flush":
            job = store.begin_flush(now=now)
            if job is not None:
                store.finish_flush(job, now=now)
            if drain_every_flush:
                picks.extend(drain(store, now))
        if check_reads:
            for k, v in model.items():
                assert store.get(k) == v, (op, key)
    return model, picks


def drain(store, now=0.0):
    """Run every due compaction to completion; returns the pick trace."""
    picks = []
    guard = 0
    while True:
        job = store.pick_compaction(now=now)
        if job is None:
            break
        picks.append(
            (job.pick.source_level, job.pick.target_level,
             len(job.pick.inputs), job.input_bytes)
        )
        store.finish_compaction(job, now=now)
        guard += 1
        assert guard < 10_000, "compaction drain did not terminate"
    return picks


# ----------------------------------------------------------------------
# contents equivalence + level ordering
# ----------------------------------------------------------------------


@pytest.mark.parametrize("policy", POLICIES)
def test_final_contents_match_reference(policy):
    ops = scripted_ops()
    reference = make_store("reference", "ref")
    ref_model, _ = apply_ops(reference, ops)
    store = make_store(policy, policy)
    model, _ = apply_ops(store, ops)
    assert model == ref_model
    assert dict(store.scan()) == dict(reference.scan()) == model
    store.check_invariants()


@pytest.mark.parametrize("policy", POLICIES)
def test_read_your_writes_every_step(policy):
    store = make_store(policy)
    apply_ops(store, scripted_ops(rounds=12), check_reads=True)
    store.check_invariants()


@pytest.mark.parametrize("policy", POLICIES)
def test_no_key_unreadable_mid_compaction(policy):
    """Keys stay readable while a pick is claimed but unfinished."""
    store = make_store(policy)
    model = {}
    now = 0.0
    for r in range(10):
        for i in range(6):
            key = f"k{(r + i) % 12:02d}".encode()
            value = f"v{r}.{i}".encode() * 2
            store.put(key, value)
            model[key] = value
        now += 1.0
        job = store.begin_flush(now=now)
        if job is not None:
            store.finish_flush(job, now=now)
        picked = store.pick_compaction(now=now)
        # claimed-but-running: every key must still resolve
        for k, v in model.items():
            assert store.get(k) == v
        if picked is not None:
            store.finish_compaction(picked, now=now)
            for k, v in model.items():
                assert store.get(k) == v
    drain(store, now)
    assert dict(store.scan()) == model
    store.check_invariants()


@pytest.mark.parametrize("policy", POLICIES)
def test_no_lost_keys_after_full_drain(policy):
    store = make_store(policy)
    model, _ = apply_ops(store, scripted_ops(rounds=40))
    drain(store)
    assert dict(store.scan()) == model
    store.check_invariants()


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------


@pytest.mark.parametrize("policy", POLICIES)
def test_byte_identical_reruns(policy):
    ops = scripted_ops()
    runs = []
    for _ in range(2):
        store = make_store(policy)
        model, picks = apply_ops(store, ops)
        runs.append((model, picks, sorted(store.scan()),
                     store.stats.as_dict(), store.policy.describe()))
    assert runs[0] == runs[1]


@pytest.mark.parametrize("policy", POLICIES)
def test_pick_trace_stable_under_restore(policy):
    """A snapshot/restore round-trip resets transient scheduler state."""
    store = make_store(policy)
    apply_ops(store, scripted_ops(rounds=10))
    drain(store)
    snapshot = store.snapshot_state()
    contents = dict(store.scan())
    store.restore_from_checkpoint(snapshot)
    assert store.policy.picks == 0  # reset() ran
    assert dict(store.scan()) == contents
    store.check_invariants()


# ----------------------------------------------------------------------
# exactly-once under crash-and-restore
# ----------------------------------------------------------------------


@pytest.mark.parametrize("policy", POLICIES)
def test_exactly_once_under_crash_and_restore(policy):
    gen = SentenceGenerator(vocabulary_size=300, words_per_sentence=6, seed=7)
    records = list(gen.sentences(220))
    reference = count_words(records)
    pipeline = CheckpointedWordCount(partitions=2, compaction_policy=policy)
    pipeline.produce(records)
    counts = pipeline.run_to_completion(batch=10, crash_at_steps=(3, 8))
    assert pipeline.crashes == 2
    assert counts == reference
    for store in pipeline.stores:
        assert store.policy.name == policy
        store.check_invariants()


# ----------------------------------------------------------------------
# golden p99.9 tables (library scenarios)
# ----------------------------------------------------------------------


def _golden_settings():
    from repro.experiments.runner import ExperimentSettings

    return ExperimentSettings(duration_s=60.0, warmup_s=20.0, seed=1)


def compute_policy_tails(scenario_name):
    """p99.9 per policy on *scenario_name* at the golden settings."""
    from dataclasses import replace

    from repro.core.mitigation import MitigationPlan
    from repro.experiments.parallel import RunSpec, run_grid
    from repro.scenarios.library import scenario

    base = scenario(scenario_name)
    specs = [
        RunSpec(
            scenario=replace(
                base,
                mitigation=MitigationPlan(compaction_policy=policy),
            ),
            settings=_golden_settings(),
            label=policy,
        )
        for policy in POLICIES
    ]
    summaries = run_grid(specs, cache=False)
    return {policy: summary.p999
            for policy, summary in zip(POLICIES, summaries)}


def test_golden_p999_tables():
    """Library-scenario tails per policy are pinned bit-for-bit.

    A diff here means a policy's scheduling decisions changed — either
    a deliberate improvement (regenerate the goldens and say so in the
    commit) or an accidental behavior change (fix it).
    """
    golden = json.loads(GOLDENS.read_text())
    for scenario_name, expected in golden.items():
        observed = compute_policy_tails(scenario_name)
        assert set(observed) == set(expected), scenario_name
        for policy, p999 in expected.items():
            assert observed[policy] == pytest.approx(p999, rel=0, abs=0), (
                f"{scenario_name}/{policy}: expected p99.9 {p999}, "
                f"got {observed[policy]} — regenerate with "
                "PYTHONPATH=src python tests/make_policy_goldens.py "
                "if the change is deliberate"
            )
