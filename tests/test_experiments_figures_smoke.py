"""Smoke tests: every experiment function returns a well-formed dict.

Run with a short horizon — the *shape* assertions live in the benchmark
suite; here we only verify structure, so experiment code stays covered
by `pytest tests/`.
"""

import pytest

from repro.experiments import (
    ExperimentSettings,
    fig8_statistical,
    fig16_traffic_mitigation,
    fig17_wordcount_tails,
    headline_reduction,
    table1_checkpoint_stats,
)

SHORT = ExperimentSettings(duration_s=104.0, warmup_s=32.0, seed=1)


@pytest.fixture(scope="module")
def fig8_out():
    return fig8_statistical(SHORT)


def test_fig8_structure(fig8_out):
    assert set(fig8_out) >= {"times", "p999", "spikes", "spike_period_s",
                             "per_checkpoint_compactions", "tails"}
    assert len(fig8_out["times"]) == len(fig8_out["p999"])
    assert fig8_out["tails"]["p999"] > 0


def test_table1_structure():
    out = table1_checkpoint_stats(
        ExperimentSettings(duration_s=200.0, warmup_s=40.0, seed=1)
    )
    assert len(out["rows"]) == 5
    for row in out["rows"]:
        assert {"checkpoint", "time", "flush_count",
                "compaction_count"} <= set(row)


def test_fig16_structure():
    out = fig16_traffic_mitigation(SHORT)
    for side in ("baseline", "solution"):
        assert {"tails", "timeline", "peak_p999", "overlap"} <= set(out[side])
    assert 0 < out["reduction_p999"] < 1.5
    assert 0 < out["reduction_p95"] < 1.5


def test_fig17_structure():
    out = fig17_wordcount_tails(SHORT)
    assert out["baseline"]["tails"]["p999"] > 0
    assert out["solution"]["tails"]["p999"] > 0


def test_headline_structure():
    out = headline_reduction(SHORT)
    assert {"baseline", "mitigated", "reduction_p999",
            "reduction_p95"} == set(out)


def test_result_summary_is_json_serializable():
    import json

    from repro.experiments import run_traffic

    result = run_traffic(settings=SHORT)
    summary = result.summary(start=SHORT.warmup_s)
    encoded = json.dumps(summary)
    decoded = json.loads(encoded)
    assert decoded["checkpoints"]["completed"] > 0
    assert decoded["activities"]["flushes"] > 0
    assert 0 < decoded["mean_cpu_cores"] <= 16.0
