"""Unit tests for storage profiles and HDFS backup."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import Simulator
from repro.storage import HDD, NVME_SSD, TMPFS, HdfsBackup, StorageProfile, profile_by_name


def test_builtin_profiles_ordering():
    assert TMPFS.write_bandwidth_mb_s > NVME_SSD.write_bandwidth_mb_s > HDD.write_bandwidth_mb_s
    assert TMPFS.io_cpu_seconds_per_mb == 0.0
    assert NVME_SSD.io_cpu_seconds_per_mb > 0.0


def test_profile_lookup():
    assert profile_by_name("tmpfs") is TMPFS
    assert profile_by_name("nvme") is NVME_SSD
    with pytest.raises(ConfigurationError):
        profile_by_name("floppy")


def test_work_conversion():
    assert TMPFS.write_work_mb(2_000_000) == pytest.approx(2.0)
    assert TMPFS.read_work_mb(500_000) == pytest.approx(0.5)


def test_profile_validation():
    with pytest.raises(ConfigurationError):
        StorageProfile("bad", write_bandwidth_mb_s=0.0, read_bandwidth_mb_s=1.0)
    with pytest.raises(ConfigurationError):
        StorageProfile("bad", write_bandwidth_mb_s=1.0, read_bandwidth_mb_s=1.0,
                       per_op_latency_s=-1.0)


def test_hdfs_backup_takes_transfer_time():
    sim = Simulator()
    hdfs = HdfsBackup(sim, uplink_mb_s=100.0, replication=3)
    hdfs.backup(1, 50_000_000)  # 50 MB * 3 replicas / 100 MB/s = 1.5 s
    assert hdfs.pending == 1
    sim.run()
    assert hdfs.pending == 0
    checkpoint_id, nbytes, submit, finish = hdfs.completed[0]
    assert checkpoint_id == 1
    assert finish - submit == pytest.approx(1.5)
    assert hdfs.recovery_point_lag() == pytest.approx(1.5)


def test_hdfs_concurrent_backups_share_uplink():
    sim = Simulator()
    hdfs = HdfsBackup(sim, uplink_mb_s=100.0, replication=1)
    hdfs.backup(1, 100_000_000)
    hdfs.backup(2, 100_000_000)
    sim.run()
    # 2 x 1 MB-equivalent jobs of 1s each sharing -> both finish at 2s
    finishes = sorted(done for _id, _b, _s, done in hdfs.completed)
    assert finishes[-1] == pytest.approx(2.0)


def test_hdfs_zero_bytes_completes_immediately():
    sim = Simulator()
    hdfs = HdfsBackup(sim)
    hdfs.backup(9, 0)
    assert hdfs.completed[0][0] == 9
    assert hdfs.recovery_point_lag() == 0.0


def test_degraded_composes_without_stacking_the_name():
    once = NVME_SSD.degraded(0.5)
    assert once.name == "nvme-degraded"
    assert once.write_bandwidth_mb_s == pytest.approx(
        NVME_SSD.write_bandwidth_mb_s * 0.5
    )
    twice = once.degraded(0.5)
    # bandwidth factors multiply; the suffix appears exactly once
    assert twice.name == "nvme-degraded"
    assert twice.write_bandwidth_mb_s == pytest.approx(
        NVME_SSD.write_bandwidth_mb_s * 0.25
    )
    assert twice.read_bandwidth_mb_s == pytest.approx(
        NVME_SSD.read_bandwidth_mb_s * 0.25
    )
    with pytest.raises(ConfigurationError):
        NVME_SSD.degraded(0.0)
    with pytest.raises(ConfigurationError):
        NVME_SSD.degraded(1.5)
