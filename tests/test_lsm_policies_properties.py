"""Property-based differential tests: every policy vs. the reference.

Hypothesis drives random operation sequences (puts, deletes, flushes,
compaction drains) through a store under each registered policy and a
store under the reference policy.  Whatever the policy reorders or
splits, the observable key/value contents must be identical — to the
reference and to a plain dict model — and no key may ever become
unreadable mid-sequence.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import pytest

from repro.lsm import KiB, LSMOptions, LSMStore, policy_names

KEYS = st.integers(min_value=0, max_value=30).map(lambda i: f"k{i:02d}".encode())
VALUES = st.binary(min_size=0, max_size=10)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), KEYS, VALUES),
        st.tuples(st.just("delete"), KEYS, st.just(b"")),
        st.tuples(st.just("flush"), st.just(b""), st.just(b"")),
        st.tuples(st.just("compact"), st.just(b""), st.just(b"")),
    ),
    min_size=1,
    max_size=100,
)

POLICIES = [p for p in policy_names() if p != "reference"]


def make_store(policy, name):
    return LSMStore(
        LSMOptions(
            write_buffer_size=2 * KiB,
            l0_compaction_trigger=2,
            max_bytes_for_level_base=4 * KiB,
            compaction_policy=policy,
        ),
        name,
    )


def run_ops(store, ops):
    model = {}
    now = 0.0
    for op, key, value in ops:
        now += 1.0
        if op == "put":
            store.put(key, value)
            model[key] = value
        elif op == "delete":
            store.delete(key)
            model.pop(key, None)
        elif op == "flush":
            job = store.begin_flush(now=now)
            if job is not None:
                store.finish_flush(job, now=now)
        elif op == "compact":
            job = store.pick_compaction(now=now)
            if job is not None:
                store.finish_compaction(job, now=now)
    return model


def drain(store, now=1000.0):
    for _ in range(10_000):
        job = store.pick_compaction(now=now)
        if job is None:
            return
        store.finish_compaction(job, now=now)
    raise AssertionError("compaction drain did not terminate")


@pytest.mark.parametrize("policy", POLICIES)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_policy_matches_reference_and_model(policy, ops):
    reference = make_store("reference", "ref")
    store = make_store(policy, policy)
    ref_model = run_ops(reference, ops)
    model = run_ops(store, ops)
    assert model == ref_model
    # point reads: every key that was ever touched resolves identically
    for key in {k for op, k, _ in ops if op in ("put", "delete")}:
        assert store.get(key) == model.get(key) == reference.get(key)
    # full contents match before *and* after a complete drain
    assert dict(store.scan()) == model == dict(reference.scan())
    drain(store)
    drain(reference)
    assert dict(store.scan()) == model == dict(reference.scan())
    store.check_invariants()
    reference.check_invariants()


@pytest.mark.parametrize("policy", POLICIES)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_no_key_unreadable_with_claimed_picks(policy, ops):
    """Reads stay correct while picks are claimed but unfinished."""
    store = make_store(policy, policy)
    model = {}
    pending = []
    now = 0.0
    for op, key, value in ops:
        now += 1.0
        if op == "put":
            store.put(key, value)
            model[key] = value
        elif op == "delete":
            store.delete(key)
            model.pop(key, None)
        elif op == "flush":
            job = store.begin_flush(now=now)
            if job is not None:
                store.finish_flush(job, now=now)
        elif op == "compact":
            # claim without finishing: the pick stays in flight
            job = store.pick_compaction(now=now)
            if job is not None:
                pending.append(job)
        # mid-compaction readability, every step
        for k, v in model.items():
            assert store.get(k) == v
    for job in pending:
        store.finish_compaction(job, now=now)
    drain(store)
    assert dict(store.scan()) == model
    store.check_invariants()


@pytest.mark.parametrize("policy", POLICIES)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_level_sizes_bounded_after_drain(policy, ops):
    """After a full drain no level (except the last) stays overflowing."""
    store = make_store(policy, policy)
    run_ops(store, ops)
    drain(store)
    levels = store.levels
    for level in range(1, levels.num_levels - 1):
        assert levels.overflow_ratio(level) <= 1.0, (
            f"L{level} still overflowing after drain"
        )
    store.check_invariants()
