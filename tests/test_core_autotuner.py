"""Tests for the online auto-tuner."""

import pytest

from repro.apps import build_traffic_job
from repro.core import OnlineAutoTuner, RandomizedL0Trigger
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def tuned_run():
    job = build_traffic_job(checkpoint_interval_s=8.0, initial_l0="aligned",
                            seed=1)
    tuner = OnlineAutoTuner()
    tuner.attach(job)
    result = job.run(280.0)
    return job, tuner, result


def test_tuner_activates_after_observation_window(tuned_run):
    job, tuner, _result = tuned_run
    assert tuner.active
    # needs observe_checkpoints=5 checkpoints (first at 8 s, 8 s apart)
    assert tuner.activated_at == pytest.approx(40.0, abs=8.0)


def test_tuner_estimates_drain_time_delay(tuned_run):
    _job, tuner, _result = tuned_run
    assert tuner.min_delay_s <= tuner.chosen_delay_s <= tuner.max_delay_s
    # our calibration's drain time is ~1 s (EXPERIMENTS.md)
    assert 0.4 <= tuner.chosen_delay_s <= 2.0


def test_tuner_randomizes_store_triggers(tuned_run):
    job, _tuner, _result = tuned_run
    policies = [
        inst.store.options.l0_trigger_policy
        for stage in job.stages
        for inst in stage.instances
        if inst.store is not None
    ]
    assert all(isinstance(p, RandomizedL0Trigger) for p in policies)


def test_tuner_installs_delay_policy(tuned_run):
    job, tuner, _result = tuned_run
    assert job.backend.delay_policy.current_delay() == pytest.approx(
        tuner.chosen_delay_s
    )


def test_tail_improves_after_activation(tuned_run):
    _job, tuner, result = tuned_run
    before = result.tail_summary(start=20.0, end=tuner.activated_at)
    after = result.tail_summary(start=tuner.activated_at + 40.0)
    assert after["p999"] < 0.5 * before["p999"]


def test_tuner_stays_quiet_on_mitigated_job():
    from repro.core import MitigationPlan

    job = build_traffic_job(checkpoint_interval_s=8.0, initial_l0="aligned",
                            seed=1, mitigation=MitigationPlan.paper_solution())
    tuner = OnlineAutoTuner(observe_checkpoints=5)
    tuner.attach(job)
    job.run(200.0)
    assert not tuner.active  # spread compactions never reach the threshold


def test_tuner_validation_and_double_attach():
    with pytest.raises(ConfigurationError):
        OnlineAutoTuner(observe_checkpoints=0)
    with pytest.raises(ConfigurationError):
        OnlineAutoTuner(burst_threshold=0)
    job = build_traffic_job(seed=1)
    tuner = OnlineAutoTuner()
    tuner.attach(job)
    with pytest.raises(ConfigurationError):
        tuner.attach(job)
