"""Unit tests for step series and millibottleneck detection."""

import pytest

from repro.errors import AnalysisError
from repro.metrics import StepSeries, millibottleneck_windows


def test_value_at_steps():
    series = StepSeries([(1.0, 10.0), (3.0, 20.0)])
    assert series.value_at(0.5) == 0.0
    assert series.value_at(1.0) == 10.0
    assert series.value_at(2.9) == 10.0
    assert series.value_at(3.0) == 20.0
    assert series.value_at(99.0) == 20.0


def test_on_grid_sampling():
    series = StepSeries([(0.0, 1.0), (2.0, 5.0)])
    times, values = series.on_grid(0.0, 4.0, 1.0)
    assert list(values) == [1.0, 1.0, 5.0, 5.0]
    assert list(times) == [0.0, 1.0, 2.0, 3.0]


def test_time_average_exact():
    series = StepSeries([(0.0, 0.0), (1.0, 10.0), (3.0, 0.0)])
    # 0 for 1s, 10 for 2s, 0 for 1s over [0,4] -> 20/4
    assert series.time_average(0.0, 4.0) == pytest.approx(5.0)


def test_maximum_in_window():
    series = StepSeries([(0.0, 1.0), (2.0, 9.0), (5.0, 3.0)])
    assert series.maximum(0.0, 10.0) == 9.0
    assert series.maximum(5.5, 10.0) == 3.0


def test_fraction_above_threshold():
    series = StepSeries([(0.0, 0.0), (1.0, 10.0), (2.0, 0.0)])
    assert series.fraction_above(5.0, 0.0, 4.0) == pytest.approx(0.25)


def test_empty_interval_raises():
    series = StepSeries([(0.0, 1.0)])
    with pytest.raises(AnalysisError):
        series.time_average(1.0, 1.0)
    with pytest.raises(AnalysisError):
        series.on_grid(2.0, 2.0, 0.1)


def test_millibottleneck_detection_finds_short_saturation():
    # saturated 16/16 between t=2 and t=2.6 only
    series = StepSeries([(0.0, 8.0), (2.0, 16.0), (2.6, 8.0)])
    windows = millibottleneck_windows(series, capacity=16.0, start=0.0, end=5.0,
                                      dt=0.05)
    assert len(windows) == 1
    start, end = windows[0]
    assert start == pytest.approx(2.0, abs=0.06)
    assert end == pytest.approx(2.6, abs=0.06)


def test_millibottleneck_ignores_long_saturation():
    series = StepSeries([(0.0, 16.0)])  # saturated forever — not "milli"
    windows = millibottleneck_windows(series, capacity=16.0, start=0.0, end=10.0,
                                      max_duration=2.0)
    assert windows == []


def test_millibottleneck_ignores_too_short_blips():
    series = StepSeries([(0.0, 8.0), (1.0, 16.0), (1.02, 8.0)])
    windows = millibottleneck_windows(series, capacity=16.0, start=0.0, end=3.0,
                                      dt=0.05, min_duration=0.1)
    assert windows == []
