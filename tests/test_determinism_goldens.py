"""Determinism goldens for the kernel hot-path optimizations.

Each optimization in the run loop (coalesced accounting, vectorized
fluid reallocation, barriered execution) claims to be *state-identical*
to the scalar/monolithic path it replaced.  These tests hold it to
that: run the same seeded job down both paths and require equal state
digests — floats compared exactly, not approximately.
"""

import pytest

from repro.apps.traffic_job import build_traffic_job
from repro.errors import SimulationError
from repro.sanitize.racedetect import digest_hash, state_digest
from repro.sim import resource as resource_mod
from repro.sim.kernel import Simulator

DURATION = 40.0


def _digest(job):
    return digest_hash(state_digest(job))


def test_coalesced_accounting_matches_per_instance_loops():
    """One batched accounting process per tick == one process per
    instance: bit-identical end state."""
    coalesced = build_traffic_job(seed=5)
    assert coalesced.coalesce_accounting  # default on
    coalesced.run(DURATION)

    scalar = build_traffic_job(seed=5)
    scalar.coalesce_accounting = False
    scalar.run(DURATION)

    assert _digest(coalesced) == _digest(scalar)


def test_vectorized_reallocation_matches_scalar(monkeypatch):
    """The numpy gather/scatter path and the per-flow loop must agree
    bitwise on every float they produce."""
    vectorized = build_traffic_job(seed=7)
    vectorized.run(DURATION)

    # Force every reallocation down the scalar path.
    monkeypatch.setattr(resource_mod, "_VECTOR_MIN_FLOWS", 10**9)
    scalar = build_traffic_job(seed=7)
    scalar.run(DURATION)

    assert _digest(vectorized) == _digest(scalar)


def test_barriered_run_matches_single_call():
    """Lock-step epochs (sharded mode's conservative sync) replay the
    exact event sequence of one uninterrupted run."""
    plain = build_traffic_job(seed=9)
    plain.run(DURATION)

    barriered = build_traffic_job(seed=9)
    barriered.run(DURATION, barrier_s=8.0)

    assert _digest(plain) == _digest(barriered)


def test_barrier_not_dividing_duration_matches_too():
    plain = build_traffic_job(seed=11)
    plain.run(30.0)
    barriered = build_traffic_job(seed=11)
    barriered.run(30.0, barrier_s=7.0)  # last epoch is short
    assert _digest(plain) == _digest(barriered)


def test_max_events_stops_after_exactly_n_dispatches():
    sim = Simulator(seed=1)
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    with pytest.raises(SimulationError):
        sim.run(max_events=3)
    assert fired == [0, 1, 2]
    assert sim.events_fired == 3


def test_max_events_equal_to_queue_is_not_an_error():
    sim = Simulator(seed=1)
    fired = []
    for i in range(4):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_dispatch_stats_do_not_perturb_state():
    """The profiler's per-callback timing must be observation-only."""
    plain = build_traffic_job(seed=13)
    plain.run(24.0)

    profiled = build_traffic_job(seed=13)
    profiled.sim.enable_dispatch_stats()
    profiled.run(24.0)

    assert _digest(plain) == _digest(profiled)
    stats = profiled.sim.dispatch_stats()
    assert stats and all(
        count > 0 and self_s >= 0.0 for count, self_s in stats.values()
    )
    assert sum(count for count, _ in stats.values()) == (
        profiled.sim.events_fired
    )


# ----------------------------------------------------------------------
# the mitigation zoo is deterministic (slow lane: run with `-m slow`)
# ----------------------------------------------------------------------


from repro.core.mitigation import MitigationPlan  # noqa: E402
from repro.lsm import policy_names  # noqa: E402


@pytest.mark.slow
@pytest.mark.parametrize("policy", policy_names())
def test_policy_runs_are_digest_identical(policy):
    """Two identical seeded runs under each zoo policy end in
    bit-identical engine state."""
    digests = []
    for _ in range(2):
        job = build_traffic_job(
            seed=5, mitigation=MitigationPlan(compaction_policy=policy))
        job.run(DURATION)
        digests.append(_digest(job))
    assert digests[0] == digests[1]
