"""Unit and property tests for the WAL and crash recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LSMError
from repro.lsm import KiB, LSMOptions, LSMStore
from repro.lsm.wal import WriteAheadLog


def wal_store(**overrides):
    defaults = dict(write_buffer_size=4 * KiB, l0_compaction_trigger=4,
                    wal_enabled=True)
    defaults.update(overrides)
    return LSMStore(LSMOptions(**defaults), "wal-store")


# ---------------------------------------------------------------- WAL unit

def test_log_records_sequence_and_sizes():
    wal = WriteAheadLog()
    s1 = wal.log_put(b"a", b"1")
    s2 = wal.log_delete(b"b")
    assert s2 == s1 + 1
    assert wal.appended_bytes > 0
    assert wal.live_bytes == wal.appended_bytes


def test_seal_and_drop_segments():
    wal = WriteAheadLog()
    wal.log_put(b"a", b"1")
    first = wal.seal_active_segment()
    wal.log_put(b"b", b"2")
    assert wal.segment_count == 2
    wal.drop_segment(first)
    assert wal.segment_count == 1
    assert [r.key for r in wal.replay()] == [b"b"]


def test_drop_unknown_segment_raises():
    wal = WriteAheadLog()
    with pytest.raises(LSMError):
        wal.drop_segment(99)


def test_sealed_segment_rejects_appends():
    wal = WriteAheadLog()
    wal.log_put(b"a", b"1")
    segment = wal._sealed_segment = None  # noqa: F841 - doc only
    wal.seal_active_segment()
    # appends go to the *new* active segment, never the sealed one
    wal.log_put(b"b", b"2")
    assert wal.segment_count == 2


def test_replay_order_is_write_order():
    wal = WriteAheadLog()
    wal.log_put(b"k", b"1")
    wal.seal_active_segment()
    wal.log_put(b"k", b"2")
    values = [r.value for r in wal.replay()]
    assert values == [b"1", b"2"]


# ------------------------------------------------------------- store + WAL

def test_recovery_replays_unflushed_writes():
    store = wal_store()
    store.put(b"flushed", b"1")
    job = store.begin_flush()
    store.finish_flush(job)
    store.put(b"memtable-only", b"2")
    store.delete(b"flushed")
    recovered = store.simulate_crash_and_recover()
    assert recovered.get(b"memtable-only") == b"2"
    assert recovered.get(b"flushed") is None  # tombstone replayed
    assert store.closed


def test_recovery_without_wal_loses_memtable():
    store = wal_store(wal_enabled=False)
    store.put(b"flushed", b"1")
    job = store.begin_flush()
    store.finish_flush(job)
    store.put(b"lost", b"2")
    recovered = store.simulate_crash_and_recover()
    assert recovered.get(b"flushed") == b"1"   # SSTable survived
    assert recovered.get(b"lost") is None      # memtable write lost


def test_flush_truncates_wal():
    store = wal_store()
    store.put(b"a", b"1")
    before = store.wal.live_bytes
    assert before > 0
    job = store.begin_flush()
    store.finish_flush(job)
    assert store.wal.live_bytes == 0


def test_wal_segments_track_frozen_memtables():
    store = wal_store()
    store.put(b"a", b"1")
    job = store.begin_flush()  # frozen, not yet finished
    store.put(b"b", b"2")
    assert store.wal.segment_count == 2
    store.finish_flush(job)
    assert store.wal.segment_count == 1


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete", "flush"]),
            st.integers(0, 20).map(lambda i: f"k{i}".encode()),
            st.binary(max_size=8),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_recovery_equals_pre_crash_state(ops):
    """With a WAL, crash recovery is lossless at any point."""
    store = wal_store()
    model = {}
    for op, key, value in ops:
        if op == "put":
            store.put(key, value)
            model[key] = value
        elif op == "delete":
            store.delete(key)
            model.pop(key, None)
        else:
            job = store.begin_flush()
            if job is not None:
                store.finish_flush(job)
    recovered = store.simulate_crash_and_recover()
    assert dict(recovered.scan()) == model
