"""Tests for the millibottleneck detector (repro.analysis.millibottleneck)."""

import numpy as np
import pytest

from repro.analysis.millibottleneck import (
    MillibottleneckReport,
    SpikeAttribution,
    analyze_result,
    analyze_summary,
    analyze_trace,
    default_threshold,
    detect,
)
from repro.metrics.spans import ActivitySpan, SpanLog
from repro.metrics.timeline import StepSeries


def synthetic_timeline(spike_times, duration=100.0, dt=0.05, base=0.3, peak=2.0):
    """A flat p99.9 timeline with 1-second excursions at *spike_times*."""
    times = np.arange(0.0, duration, dt)
    values = np.full(len(times), base)
    for t0 in spike_times:
        values[(times >= t0) & (times < t0 + 1.0)] = peak
    return times, values


def overlap_spans(burst_times, stages=("s0",)):
    """Flush + compaction spans overlapping around each burst time."""
    log = SpanLog()
    for t0 in burst_times:
        for stage in stages:
            log.add(ActivitySpan("flush", f"f@{t0}", stage, 0, "node0",
                                 t0 - 0.4, t0 + 0.1, 1000))
            log.add(ActivitySpan("compaction", f"c@{t0}", stage, 0, "node0",
                                 t0 - 0.2, t0 + 0.6, 5000))
    return log


# ----------------------------------------------------------------------
# core detector on synthetic input
# ----------------------------------------------------------------------


def test_detector_recall_on_injected_overlaps():
    """Every injected spike backed by an overlap must be attributed."""
    spikes_at = [10.0, 30.0, 50.0, 70.0, 90.0]
    times, values = synthetic_timeline(spikes_at)
    report = detect(times, values, spans=overlap_spans(spikes_at))
    assert report.spike_count == len(spikes_at)
    assert report.attributed_fraction >= 0.9
    for spike, expected in zip(report.spikes, spikes_at):
        assert spike.peak_time == pytest.approx(expected, abs=1.0)
        assert spike.flush_spans > 0 and spike.compaction_spans > 0
        assert spike.overlap_s > 0


def test_spike_without_background_work_is_unattributed():
    times, values = synthetic_timeline([20.0, 60.0])
    report = detect(times, values, spans=overlap_spans([20.0]))
    attributed = {round(s.peak_time) for s in report.spikes if s.attributed}
    assert 20 in attributed
    assert 60 not in attributed
    assert report.attributed_count == 1


def test_cpu_gate_blocks_unsaturated_windows():
    spikes_at = [20.0]
    times, values = synthetic_timeline(spikes_at, duration=40.0)
    spans = overlap_spans(spikes_at)
    idle = StepSeries([(0.0, 1.0)])  # 1 of 16 cores busy: never saturated
    report = detect(times, values, spans=spans, cpu=idle, capacity=16.0)
    assert report.attributed_count == 0
    hot = StepSeries([(0.0, 1.0), (19.5, 16.0), (21.0, 1.0)])
    report = detect(times, values, spans=spans, cpu=hot, capacity=16.0)
    assert report.attributed_count == 1
    assert report.spikes[0].cpu_saturated_fraction > 0
    assert report.saturation_windows  # the hot interval is flagged


def test_detect_from_concurrency_arrays():
    spikes_at = [25.0]
    times, values = synthetic_timeline(spikes_at, duration=50.0)
    grid = np.arange(0.0, 50.0, 0.05)
    flush = ((grid >= 24.6) & (grid < 25.1)).astype(float)
    compaction = ((grid >= 24.8) & (grid < 25.6)).astype(float) * 2
    report = detect(
        times, values,
        concurrency_times=grid,
        flush_concurrency=flush,
        compaction_concurrency=compaction,
    )
    assert report.attributed_count == 1
    spike = report.spikes[0]
    assert spike.flush_spans == 1 and spike.compaction_spans == 2
    assert spike.overlap_s == pytest.approx(0.3, abs=0.1)


def test_scheduled_vs_statistical_classification():
    spikes_at = [10.0, 42.0]
    times, values = synthetic_timeline(spikes_at, duration=60.0)
    checkpoints = [8.0, 16.0, 24.0, 32.0, 40.0, 48.0]
    # one stage bursting alone -> scheduled
    single = detect(times, values, spans=overlap_spans(spikes_at, ("s0",)),
                    checkpoint_times=checkpoints,
                    per_checkpoint={0: {"s0": 2, "s1": 0}, 4: {"s0": 2, "s1": 0},
                                    2: {"s0": 0, "s1": 2}})
    assert single.classification == "scheduled"
    # both stages bursting together -> statistical
    both = detect(times, values, spans=overlap_spans(spikes_at, ("s0", "s1")),
                  checkpoint_times=checkpoints,
                  per_checkpoint={0: {"s0": 2, "s1": 2}, 4: {"s0": 2, "s1": 2}})
    assert both.classification == "statistical"
    assert both.alignment == pytest.approx(1.0)
    assert all(s.checkpoint_index in (0, 4) for s in both.spikes)


def test_default_threshold_rule():
    assert default_threshold([]) == 0.8
    assert default_threshold([0.1] * 10) == 0.8  # floor dominates
    assert default_threshold([1.0] * 10) == pytest.approx(2.5)


def test_report_dict_round_trip():
    times, values = synthetic_timeline([10.0], duration=20.0)
    report = detect(times, values, spans=overlap_spans([10.0]))
    revived = MillibottleneckReport.from_dict(report.to_dict())
    assert revived.to_dict() == report.to_dict()
    assert isinstance(revived.spikes[0], SpikeAttribution)
    assert isinstance(revived.spikes[0].window, tuple)


# ----------------------------------------------------------------------
# acceptance: the paper's every-4th-checkpoint cadence
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def fig8_result():
    from repro.api import ExperimentSettings, run_traffic

    settings = ExperimentSettings(duration_s=104.0, warmup_s=32.0, trace=True)
    return run_traffic(settings=settings)


def test_attributes_every_4th_checkpoint_spikes(fig8_result):
    """≥90% of the aligned baseline's p99.9 spikes must be attributed
    to flush+compaction overlap windows (the ISSUE acceptance bar)."""
    report = analyze_result(fig8_result, start=32.0)
    assert report.spike_count >= 2
    assert report.attributed_fraction >= 0.9
    # spikes land on the every-4th-checkpoint cadence (32 s period)
    gaps = np.diff([s.peak_time for s in report.spikes])
    assert np.allclose(gaps, 32.0, atol=4.0)
    for spike in report.spikes:
        assert spike.checkpoint_index % 4 == 0
        assert spike.cpu_saturated_fraction > 0
    assert report.saturation_windows


def test_summary_and_trace_paths_agree_with_live(fig8_result, tmp_path):
    from repro.api import ExperimentSettings, read_jsonl, summarize_run

    settings = ExperimentSettings(duration_s=104.0, warmup_s=32.0, trace=True)
    live = analyze_result(fig8_result, start=32.0)

    summary = summarize_run(fig8_result, settings)
    from_summary = analyze_summary(summary)
    assert from_summary.spike_count == live.spike_count
    assert from_summary.attributed_fraction >= 0.9

    path = tmp_path / "fig8.jsonl"
    fig8_result.export_trace(path)
    from_trace = analyze_trace(read_jsonl(path), capacity=16)
    # the trace path sees the full run (no warmup cut) and derives its
    # latency track from the exported counters, so compare attribution only
    assert from_trace.attributed_fraction >= 0.9


def test_trace_path_requires_latency_track():
    from repro.errors import AnalysisError

    with pytest.raises(AnalysisError):
        analyze_trace([])
