"""DS2xx rule family: positive fixtures, suppression, call-graph facts."""

from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.sanitize import RULES, lint_paths, lint_source, render_findings
from repro.sanitize.lint import _select_rules
from repro.sanitize.syncgraph import (
    SYNC_CATALOG,
    build_project,
    declared_edge_kinds,
    module_name_for,
    primitives_by_method,
)

FIXTURES = Path(__file__).parent / "data" / "lint_fixtures"
SYNC_VIOLATIONS = FIXTURES / "sync_violations.py"
SYNC_SUPPRESSED = FIXTURES / "sync_suppressed.py"
PACKAGE = Path(__file__).parents[1] / "src" / "repro"


@pytest.mark.parametrize(
    "rule_id, lines",
    [
        ("DS201", [22]),
        ("DS202", [26, 27, 43, 44, 49, 50]),
        ("DS203", [33, 38]),
        ("DS204", [44, 50]),
        ("DS205", [61]),
    ],
)
def test_planted_sync_violations(rule_id, lines):
    findings = lint_paths([SYNC_VIOLATIONS], rules=[rule_id])
    assert [f.line for f in findings] == lines, render_findings(findings)
    assert all(f.rule_id == rule_id for f in findings)


def test_ds201_carries_the_dispatch_chain_as_evidence():
    (finding,) = lint_paths([SYNC_VIOLATIONS], rules=["DS201"])
    assert "Driver.on_tick -> Driver.freeze" in finding.message
    assert "threadpool.pause" in finding.message


def test_suppressed_fixture_is_clean():
    assert lint_paths([SYNC_SUPPRESSED]) == []


def test_sync_rules_see_cross_module_chains(tmp_path):
    """A callback registered in one module reaching a blocking call in
    another is only visible with the shared project graph."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "a.py").write_text(
        "from .b import work\n\n"
        "class Boot:\n"
        "    def __init__(self, sim):\n"
        "        sim.call_soon(self.on_start)\n\n"
        "    def on_start(self):\n"
        "        work(self)\n"
    )
    (pkg / "b.py").write_text(
        "def work(owner):\n"
        "    owner.backend.flush_instance(owner)\n"
    )
    findings = lint_paths([pkg], rules=["DS201"])
    assert [f.rule_id for f in findings] == ["DS201"]
    assert "Boot.on_start" in findings[0].message
    # Linting b.py alone (no project) cannot prove reachability.
    assert lint_paths([pkg / "b.py"], rules=["DS201"]) == []


def test_module_name_resolution(tmp_path):
    pkg = tmp_path / "top" / "inner"
    pkg.mkdir(parents=True)
    (tmp_path / "top" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text("")
    assert module_name_for(pkg / "mod.py") == "top.inner.mod"
    assert module_name_for(pkg / "__init__.py") == "top.inner"


def test_callgraph_resolves_local_alias():
    source = (
        "class A:\n"
        "    def go(self):\n"
        "        f = self.backend.flush_instance\n"
        "        f(1)\n"
    )
    import ast

    graph = build_project([("x.py", ast.parse(source))])
    sites = [s for s in graph.calls.get("x.A.go", [])]
    assert any(s.attr == "flush_instance" for s in sites)


def test_catalog_is_internally_consistent():
    names = [p.name for p in SYNC_CATALOG]
    assert len(names) == len(set(names))
    by_method = primitives_by_method()
    assert by_method["trigger"].blocking
    assert by_method["flush_instance"].owner == "LSMStateBackend"
    # The paper's shadow edge is declared so the audit diff closes.
    kinds = declared_edge_kinds()
    assert kinds["compaction-during-checkpoint"] == (
        "shadow.compaction-checkpoint"
    )
    assert kinds["checkpoint-barrier"] == "checkpoint.trigger"
    for prim in SYNC_CATALOG:
        assert prim.rationale, f"{prim.name} has no rationale"


def test_repro_package_has_no_unsuppressed_sync_findings():
    findings = lint_paths([PACKAGE], rules=["DS2xx"])
    assert findings == [], render_findings(findings)


def test_rule_family_selection():
    assert [r.id for r in _select_rules(["DS2xx"])] == [
        "DS201", "DS202", "DS203", "DS204", "DS205",
    ]
    assert [r.id for r in _select_rules(["DS1xx"])] == [
        "DS101", "DS102", "DS103", "DS104", "DS105",
    ]
    assert [r.id for r in _select_rules(["hidden-blocking-call"])] == ["DS201"]
    # Duplicates collapse, order of first mention wins.
    assert [r.id for r in _select_rules(["DS202", "DS2xx"])] == [
        "DS202", "DS201", "DS203", "DS204", "DS205",
    ]


def test_unknown_rule_suggests_neighbours():
    with pytest.raises(ConfigurationError, match="did you mean"):
        _select_rules(["DS2O1"])  # letter O for zero
    with pytest.raises(ConfigurationError, match="hidden-blocking-call"):
        _select_rules(["hidden-blocking-cal"])


def test_single_file_project_graph_is_cached_across_rules():
    source = SYNC_VIOLATIONS.read_text(encoding="utf-8")
    findings = lint_source(source, str(SYNC_VIOLATIONS), rules=["DS2xx"])
    assert {f.rule_id for f in findings} == {
        "DS201", "DS202", "DS203", "DS204", "DS205",
    }
