"""Unit tests for the memtable."""

import pytest

from repro.errors import FrozenMemtableError
from repro.lsm import TOMBSTONE, MemTable


def test_put_get_roundtrip():
    table = MemTable()
    table.put(b"k1", b"v1")
    assert table.get(b"k1") == b"v1"
    assert b"k1" in table
    assert table.get(b"missing") is None


def test_overwrite_replaces_value_and_adjusts_bytes():
    table = MemTable(entry_overhead_bytes=0)
    table.put(b"k", b"short")
    first = table.size_bytes
    table.put(b"k", b"a-much-longer-value")
    assert table.get(b"k") == b"a-much-longer-value"
    assert table.size_bytes == first - len(b"short") + len(b"a-much-longer-value")
    assert len(table) == 1


def test_delete_writes_tombstone():
    table = MemTable()
    table.put(b"k", b"v")
    table.delete(b"k")
    assert table.get(b"k") is TOMBSTONE
    assert len(table) == 1  # tombstone is an entry


def test_delete_of_absent_key_records_tombstone():
    table = MemTable()
    table.delete(b"ghost")
    assert table.get(b"ghost") is TOMBSTONE


def test_size_accounting_includes_overhead():
    table = MemTable(entry_overhead_bytes=24)
    table.put(b"ab", b"cdef")
    assert table.size_bytes == 2 + 4 + 24


def test_account_adds_logical_volume_only():
    table = MemTable(entry_overhead_bytes=10)
    table.account(100, 5000)
    assert table.size_bytes == 5000 + 100 * 10
    assert table.entry_count == 100
    assert len(table) == 0
    assert not table.is_empty


def test_account_rejects_negative():
    table = MemTable()
    with pytest.raises(ValueError):
        table.account(-1, 0)
    with pytest.raises(ValueError):
        table.account(0, -5)


def test_frozen_memtable_rejects_writes():
    table = MemTable()
    table.put(b"k", b"v")
    table.freeze()
    assert table.frozen
    with pytest.raises(FrozenMemtableError):
        table.put(b"k2", b"v")
    with pytest.raises(FrozenMemtableError):
        table.delete(b"k")
    with pytest.raises(FrozenMemtableError):
        table.account(1, 1)
    assert table.get(b"k") == b"v"  # reads still work


def test_sorted_entries_are_sorted():
    table = MemTable()
    for key in (b"m", b"a", b"z", b"c"):
        table.put(key, b"v")
    keys = [k for k, _v in table.sorted_entries()]
    assert keys == sorted(keys)


def test_scan_respects_bounds():
    table = MemTable()
    for i in range(10):
        table.put(f"k{i}".encode(), b"v")
    result = [k for k, _v in table.scan(low=b"k3", high=b"k7")]
    assert result == [b"k3", b"k4", b"k5", b"k6"]


def test_is_empty():
    table = MemTable()
    assert table.is_empty
    table.put(b"k", b"v")
    assert not table.is_empty
