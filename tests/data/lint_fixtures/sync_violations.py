"""Planted DS2xx violations, one block per rule (see line asserts)."""

import threading


class Pool:
    def pause(self):
        self.frozen = True


class Driver:
    """DS201: blocking primitive reachable from a dispatch callback."""

    def __init__(self, sim, pool):
        self.pool = pool
        sim.schedule(0.0, self.on_tick)

    def on_tick(self):
        self.freeze()

    def freeze(self):
        self.pool.pause()  # line 22: DS201


def make_lock():
    lock = threading.Lock()  # line 26: DS202 (real sync module)
    lock.acquire()  # line 27: DS202 (undeclared vocab)
    return lock


class Producer:
    def emit(self, item):
        item.shared_state = "hot"  # line 33: DS203


class Consumer:
    def take(self, item):
        item.shared_state = "done"  # line 38: DS203


class Forward:
    def run(self, m):
        m.alpha.acquire()
        m.beta.acquire()  # line 44: DS204 (second gate, order alpha<beta)


class Backward:
    def run(self, m):
        m.beta.acquire()
        m.alpha.acquire()  # line 50: DS204 (opposite order)


class Sink:
    """DS205: unbounded queue put inside an event callback."""

    def __init__(self, sim):
        self.pending = []
        sim.call_soon(self.on_item)

    def on_item(self):
        self.pending.append(1)  # line 61: DS205
