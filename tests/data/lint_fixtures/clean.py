"""Determinism-clean fixture: allowed patterns and suppressions.

tests/test_sanitize_lint.py asserts ``repro lint`` reports zero
findings here — seeded RNG, sorted iteration, immutable defaults and
``# repro: allow[...]`` suppressions are all fine.
"""

import random
import time

SEED_OFFSET = 17  # ALL_CAPS module constants are not singletons


def benchmark_stamp():
    # The harness is allowed to read real time when measuring itself.
    return time.perf_counter()  # repro: allow[DS101] benchmark harness


def seeded_draw(seed):
    return random.Random(seed).random()


def iterate_sorted(items):
    return [item for item in sorted(set(items))]


def immutable_default(acc=()):
    return list(acc)
