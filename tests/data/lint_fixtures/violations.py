"""Planted determinism violations — one per lint rule.

Golden fixture for tests/test_sanitize_lint.py: every rule must fire
here at the exact line asserted by the test.  Do not reformat without
updating the expected line numbers.
"""

import random
import time

import numpy as np


def wall_clock():
    return time.time()  # line 15: DS101


def unseeded_draw():
    return random.random()  # line 19: DS102


def unseeded_numpy():
    return np.random.rand(3)  # line 23: DS102


def iterate_set(items):
    for item in {1, 2, 3}:  # line 27: DS103
        items.append(item)
    return sorted(items)


def mutable_default(acc=[]):  # line 32: DS104
    acc.append(1)
    return acc


shared_registry = {}  # line 37: DS105
