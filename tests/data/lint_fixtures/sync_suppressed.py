"""The same planted DS2xx shapes, each with a justified allow comment."""

import threading  # harness-side helper, not simulated


class Pool:
    def pause(self):
        self.frozen = True


class Driver:
    def __init__(self, sim, pool):
        self.pool = pool
        sim.schedule(0.0, self.on_tick)

    def on_tick(self):
        self.freeze()

    def freeze(self):
        # repro: allow[DS201] test fixture models a deliberate freeze
        self.pool.pause()


def make_lock():
    lock = threading.Lock()  # repro: allow[DS202] harness-only lock
    lock.acquire()  # repro: allow[DS202] harness-only lock
    return lock


class Producer:
    def emit(self, item):
        item.shared_state = "hot"  # repro: allow[DS203] handoff by protocol


class Consumer:
    def take(self, item):
        item.shared_state = "done"  # repro: allow[DS203] handoff by protocol


class Forward:
    def run(self, m):
        m.alpha.acquire()  # repro: allow[DS202] fixture gate
        # repro: allow[DS202,DS204] fixture order is never concurrent
        m.beta.acquire()


class Backward:
    def run(self, m):
        m.beta.acquire()  # repro: allow[DS202] fixture gate
        # repro: allow[DS202,DS204] fixture order is never concurrent
        m.alpha.acquire()


class Sink:
    def __init__(self, sim):
        self.pending = []
        sim.call_soon(self.on_item)

    def on_item(self):
        self.pending.append(1)  # repro: allow[DS205] drained every tick
