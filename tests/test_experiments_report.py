"""Unit tests for the report renderers and experiment runner plumbing."""


from repro.experiments import (
    ExperimentSettings,
    render_series,
    render_sweep,
    render_table,
    render_tails,
)


def test_render_table_alignment_and_floats():
    text = render_table(["name", "value"], [["a", 1.23456], ["long-name", 2]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "1.235" in text
    assert "long-name" in text
    # all rows equal width
    assert len({len(line) for line in lines}) <= 2


def test_render_series_shows_spike():
    times = [float(t) for t in range(100)]
    values = [0.1] * 100
    values[50] = 2.0
    art = render_series(times, values, width=50, height=5, label="p999")
    assert "p999" in art and "max=2.00" in art
    assert "#" in art


def test_render_series_empty():
    assert "empty" in render_series([], [])


def test_render_tails_includes_all_runs():
    text = render_tails({
        "baseline": {"p50": 0.3, "p95": 1.5, "p99": 1.8, "p999": 2.0, "max": 2.1},
        "solution": {"p50": 0.3, "p95": 0.5, "p99": 0.6, "p999": 0.7, "max": 0.7},
    })
    assert "baseline" in text and "solution" in text
    assert "p99.9" in text


def test_render_sweep_marks_best():
    rows = [
        {"delay_s": 0.1, "p95": 1.5, "p999": 1.9},
        {"delay_s": 1.0, "p95": 0.6, "p999": 0.7},
        {"delay_s": 8.0, "p95": 1.4, "p999": 1.8},
    ]
    text = render_sweep(rows, "delay_s")
    best_line = [l for l in text.splitlines() if "<- best" in l]
    assert len(best_line) == 1
    assert "1.0" in best_line[0]


def test_experiment_settings_defaults():
    settings = ExperimentSettings()
    start, end = settings.measure_span
    assert start == 40.0 and end == 200.0
    assert settings.fine_window_s == 0.05
