"""Unit tests for :func:`repro.faults.capacity.capacity_dip`.

GC pauses, DVFS throttling and co-location interference (§6
disturbances) are expressed as :class:`repro.faults.FaultPlan`
scenarios or by spawning ``capacity_dip`` directly; these tests pin
the mechanism's behavioural guarantees — queueing during an outage,
restoration afterwards, and non-compounding overlap.
"""

import pytest

from repro.faults.capacity import capacity_dip
from repro.sim import FluidFlow, ProcessorSharingResource, Simulator
from repro.sim.process import spawn


def loaded_node(capacity=16.0, rate=30000.0):
    sim = Simulator(seed=4)
    cpu = ProcessorSharingResource(sim, "n", capacity)
    flow = FluidFlow(sim, "f", work_per_message=0.0004, max_parallelism=16.0)
    cpu.add_flow(flow)
    flow.set_arrival_rate(rate)
    return sim, cpu, flow


def test_full_stop_queues_arrivals_and_restores_capacity():
    sim, cpu, flow = loaded_node()
    windows = []

    def schedule():
        yield 5.0
        for _ in range(3):  # stop-the-world pauses at 5, 15, 25
            spawn(sim, capacity_dip(sim, cpu, 0.0, 0.3, windows=windows))
            yield 10.0

    spawn(sim, schedule())
    sim.run_for(26.0)
    flow.finalize(sim.now)
    assert len(windows) == 3
    for _name, start, end in windows:
        assert end - start == pytest.approx(0.3, abs=1e-6)
    # 0.3 s outage at 30 000 msg/s -> ~9 000 queued
    assert max(s.queue for s in flow.segments) == pytest.approx(9000.0, rel=0.05)
    assert cpu.capacity == 16.0  # restored


def test_full_stop_causes_latency_spike():
    sim, cpu, flow = loaded_node()

    def schedule():
        yield 5.0
        spawn(sim, capacity_dip(sim, cpu, 0.0, 0.4))

    spawn(sim, schedule())
    sim.run_for(20.0)
    flow.finalize(sim.now)
    from repro.metrics import latency_from_segments

    times, latency, _w = latency_from_segments(flow.segments, 0.0, 20.0, dt=0.01)
    assert latency.max() > 0.35  # the pause is visible end to end
    assert latency[times < 4.5].max() < 0.05  # quiet before the pause


def test_partial_dip_reduces_capacity_by_factor():
    sim, cpu, _flow = loaded_node()
    windows = []
    observed = []
    spawn(sim, capacity_dip(sim, cpu, 0.6, 0.5, windows=windows), delay=3.0)
    sim.schedule(3.25, lambda: observed.append(cpu.capacity))  # during the dip
    sim.run_for(10.0)
    assert observed == [pytest.approx(16.0 * 0.6)]
    assert cpu.capacity == 16.0
    assert windows == [("n", 3.0, pytest.approx(3.5))]


def test_overlapping_dips_do_not_compound():
    sim = Simulator(seed=1)
    cpu = ProcessorSharingResource(sim, "n", 16.0)
    spawn(sim, capacity_dip(sim, cpu, 0.5, 1.0))
    spawn(sim, capacity_dip(sim, cpu, 0.5, 1.0), delay=0.5)
    observed = []
    sim.schedule(0.75, lambda: observed.append(cpu.capacity))
    sim.run()
    assert observed == [pytest.approx(8.0)]  # 0.5x once, not 0.25x
    assert cpu.capacity == 16.0


def test_overlap_of_different_factors_restores_capacity():
    """Regression: a full stop overlapping a partial dip must not save
    the already-dipped capacity as 'undisturbed' (which would ratchet
    the node down permanently)."""
    sim = Simulator(seed=1)
    cpu = ProcessorSharingResource(sim, "n", 16.0)
    spawn(sim, capacity_dip(sim, cpu, 0.5, 2.0))             # 0..2 at 8 cores
    spawn(sim, capacity_dip(sim, cpu, 0.0, 0.5), delay=1.0)  # 1..1.5 stopped
    observed = {}
    sim.schedule(1.25, lambda: observed.setdefault("during-stop", cpu.capacity))
    sim.schedule(1.75, lambda: observed.setdefault("after-stop", cpu.capacity))
    sim.run()
    assert observed["during-stop"] < 0.1
    assert cpu.capacity == 16.0  # fully restored, not ratcheted to 8


def test_engine_integration_dip_spikes_latency():
    """A mid-run dip on a live job's node queues work and shows up in the
    end-to-end latency, through the ordinary StreamJob path."""
    from repro.config import CheckpointConfig, ClusterConfig, CostModel
    from repro.stream import ConstantSource, StageSpec, StreamJob

    job = StreamJob(
        stages=[StageSpec("s", parallelism=2, state_entry_bytes=100.0,
                          distinct_keys=1000)],
        source=ConstantSource(1000.0),
        cluster=ClusterConfig(num_nodes=1, cores_per_node=4),
        checkpoint=CheckpointConfig(interval_s=4.0, first_at_s=4.0),
        cost=CostModel(cpu_seconds_per_message=0.0002),
        seed=2,
    )
    windows = []
    spawn(job.sim, capacity_dip(job.sim, job.nodes[0].cpu, 0.0, 0.3,
                                windows=windows), delay=10.0)
    result = job.run(20.0)
    assert windows == [(job.nodes[0].cpu.name, 10.0, pytest.approx(10.3))]
    _times, latency, _w = result.end_to_end_latency(0.0, 20.0)
    assert latency.max() > 0.25
