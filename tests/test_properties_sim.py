"""Property-based tests of the simulation core.

Invariants that must hold for *any* schedule of tasks and rate changes:
work conservation on the PS resource, fluid-flow mass balance, FIFO
causality of recovered latencies, and bit-for-bit determinism.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import latency_from_segments
from repro.sim import (
    FluidFlow,
    ProcessorSharingResource,
    ResourceTask,
    Simulator,
)

TASKS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0),   # submit time
        st.floats(min_value=0.05, max_value=3.0),   # work
        st.floats(min_value=0.25, max_value=2.0),   # demand
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=60, deadline=None)
@given(tasks=TASKS, capacity=st.floats(min_value=1.0, max_value=8.0))
def test_ps_resource_conserves_work(tasks, capacity):
    """Every task finishes, and no task finishes faster than its work
    at full demand nor slower than work at the minimum possible rate."""
    sim = Simulator()
    cpu = ProcessorSharingResource(sim, "cpu", capacity)
    finished = []

    def submit(at, work, demand):
        sim.schedule(at, lambda: cpu.submit(
            ResourceTask(f"t{at}", "x", work=work, demand=demand,
                         on_complete=lambda t: finished.append(t))
        ))

    for at, work, demand in tasks:
        submit(at, work, demand)
    sim.run()
    # every task finishes
    assert len(finished) == len(tasks)
    # no task beats its work at full demand
    for task in finished:
        duration = task.end_time - task.start_time
        assert duration >= task.work / min(task.demand, capacity) - 1e-6
    # work delivered never exceeds capacity x busy time
    makespan = max(t.end_time for t in finished) - min(
        t.start_time for t in finished
    )
    total_work = sum(t.work for t in finished)
    assert total_work <= capacity * makespan + 1e-6


RATE_EVENTS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=20.0),     # time
        st.floats(min_value=0.0, max_value=20000.0),  # new arrival rate
    ),
    min_size=1,
    max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(events=RATE_EVENTS)
def test_fluid_flow_mass_balance(events):
    """arrivals == served + backlog, for any rate schedule."""
    sim = Simulator()
    cpu = ProcessorSharingResource(sim, "cpu", 4.0)
    flow = FluidFlow(sim, "f", work_per_message=0.001, max_parallelism=4.0)
    cpu.add_flow(flow)
    for at, rate in events:
        sim.schedule(at, flow.set_arrival_rate, rate)
    sim.run(until=25.0)
    flow.finalize(25.0)
    arrived = served = 0.0
    for a, b in zip(flow.segments, flow.segments[1:]):
        dt = b.time - a.time
        arrived += a.arrival_rate * dt
        served += a.serve_rate * dt
    assert served <= arrived + 1e-6
    assert arrived - served == pytest.approx(flow.queue, abs=arrived * 1e-6 + 1.0)


@settings(max_examples=40, deadline=None)
@given(events=RATE_EVENTS)
def test_fifo_latency_is_causal(events):
    """Recovered latencies are non-negative and departures are ordered
    (FIFO): t + L(t) is non-decreasing."""
    sim = Simulator()
    cpu = ProcessorSharingResource(sim, "cpu", 4.0)
    flow = FluidFlow(sim, "f", work_per_message=0.001, max_parallelism=4.0)
    cpu.add_flow(flow)
    for at, rate in events:
        sim.schedule(at, flow.set_arrival_rate, rate)
    # some contention so queues actually form
    sim.schedule(5.0, lambda: cpu.submit(ResourceTask("bg", "x", 6.0, 2.0)))
    sim.run(until=25.0)
    flow.finalize(25.0)
    times, latency, _w = latency_from_segments(flow.segments, 0.0, 25.0, dt=0.02)
    assert np.all(latency >= -1e-9)
    departures = times + latency
    assert np.all(np.diff(departures) >= -1e-6)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_simulator_runs_are_deterministic(seed):
    def run_once():
        sim = Simulator(seed=seed)
        cpu = ProcessorSharingResource(sim, "cpu", 4.0)
        flow = FluidFlow(sim, "f", work_per_message=0.001, max_parallelism=4.0)
        cpu.add_flow(flow)
        rng = sim.rng.stream("load")
        for i in range(5):
            sim.schedule(rng.uniform(0, 10), flow.set_arrival_rate,
                         rng.uniform(0, 4000))
            sim.schedule(rng.uniform(0, 10), lambda: cpu.submit(
                ResourceTask(f"t{i}", "x", rng.uniform(0.1, 2.0))))
        sim.run(until=20.0)
        flow.finalize(20.0)
        return [(s.time, s.arrival_rate, s.serve_rate, s.queue)
                for s in flow.segments]

    assert run_once() == run_once()
