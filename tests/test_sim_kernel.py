"""Unit tests for the Simulator kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_run_executes_in_order_and_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, lambda: seen.append(("b", sim.now)))
    sim.schedule(1.0, lambda: seen.append(("a", sim.now)))
    sim.run()
    assert seen == [("a", 1.0), ("b", 2.0)]
    assert sim.now == 2.0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: seen.append(1))
    sim.schedule(5.0, lambda: seen.append(5))
    sim.run(until=3.0)
    assert seen == [1]
    assert sim.now == 3.0  # clock advanced exactly to the horizon
    sim.run(until=6.0)
    assert seen == [1, 5]


def test_run_for_is_relative():
    sim = Simulator()
    sim.run_for(4.0)
    assert sim.now == 4.0
    sim.run_for(2.0)
    assert sim.now == 6.0


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.run_for(5.0)
    with pytest.raises(SimulationError):
        sim.schedule(1.0, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_after(-0.1, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def chain():
        seen.append(sim.now)
        if len(seen) < 3:
            sim.schedule_after(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert seen == [1.0, 2.0, 3.0]


def test_call_soon_runs_at_current_time_after_normal_events():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: (order.append("first"), sim.call_soon(lambda: order.append("soon")))[0])
    sim.schedule(1.0, lambda: order.append("second"))
    sim.run()
    assert order == ["first", "second", "soon"]


def test_call_urgent_precedes_normal_events_at_same_time():
    sim = Simulator()
    order = []

    def at_one():
        order.append("normal-1")
        sim.call_urgent(lambda: order.append("urgent"))

    sim.schedule(1.0, at_one)
    sim.schedule(1.0, lambda: order.append("normal-2"))
    sim.run()
    # the urgent event still fires after the currently-executing batch
    # was already popped, but before any later-scheduled normal event
    assert order.index("urgent") < order.index("normal-2")


def test_max_events_guard_raises():
    sim = Simulator()

    def loop():
        sim.schedule_after(0.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(until=1.0, max_events=1000)


def test_event_counter_increments():
    sim = Simulator()
    for i in range(7):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_fired == 7
    assert sim.pending_events == 0


def test_deterministic_rng_streams():
    a = Simulator(seed=42)
    b = Simulator(seed=42)
    assert a.rng.stream("x").random() == b.rng.stream("x").random()
    c = Simulator(seed=43)
    assert a.rng.stream("y").random() != c.rng.stream("y").random()
