"""Unit tests for mitigation primitives: thresholds, delay, plan."""

import random

import pytest

from repro.core import (
    DelayedCompactionPolicy,
    MitigationPlan,
    RandomizedL0Trigger,
    StaticL0Trigger,
    estimate_drain_time,
)
from repro.errors import ConfigurationError


# ---------------------------------------------------------------- triggers

def test_static_trigger_never_changes():
    trigger = StaticL0Trigger(4)
    values = {trigger() for _ in range(10)}
    trigger.advance()
    values.add(trigger())
    assert values == {4}


def test_randomized_trigger_in_range_and_stable_between_advances():
    trigger = RandomizedL0Trigger(4, 4, random.Random(1))
    current = trigger()
    assert 4 <= current < 8
    assert trigger() == current  # stable until advance
    trigger.advance()
    assert 4 <= trigger() < 8


def test_randomized_trigger_covers_whole_range():
    trigger = RandomizedL0Trigger(4, 4, random.Random(2))
    seen = set()
    for _ in range(200):
        seen.add(trigger())
        trigger.advance()
    assert seen == {4, 5, 6, 7}


def test_randomized_trigger_uniformity():
    """α must be ~uniform — the whole point is spreading the bursts
    evenly over the cycle (Figure 10(b))."""
    trigger = RandomizedL0Trigger(4, 4, random.Random(3))
    counts = {4: 0, 5: 0, 6: 0, 7: 0}
    n = 4000
    for _ in range(n):
        counts[trigger()] += 1
        trigger.advance()
    for value in counts.values():
        assert abs(value - n / 4) < n * 0.05


def test_trigger_validation():
    with pytest.raises(ConfigurationError):
        RandomizedL0Trigger(0, 4, random.Random(0))
    with pytest.raises(ConfigurationError):
        RandomizedL0Trigger(4, 0, random.Random(0))
    with pytest.raises(ConfigurationError):
        StaticL0Trigger(0)


# ---------------------------------------------------------------- delay

def test_drain_time_formula():
    # Q = λ·b·Δt = 15000*0.5*0.7 = 5250; T = Q/5000 = 1.05
    t = estimate_drain_time(15000.0, 0.7, 5000.0, blocked_fraction=0.5)
    assert t == pytest.approx(1.05)


def test_drain_time_validation():
    with pytest.raises(ConfigurationError):
        estimate_drain_time(-1.0, 1.0, 1.0)
    with pytest.raises(ConfigurationError):
        estimate_drain_time(1.0, 1.0, 0.0)


def test_fixed_delay_policy():
    policy = DelayedCompactionPolicy(1.0)
    assert policy.current_delay() == 1.0
    assert policy.enabled


def test_auto_delay_policy_uses_observation():
    policy = DelayedCompactionPolicy(0.5, auto=True)
    assert policy.current_delay() == 0.5  # fallback before observations
    estimate = policy.observe_flush_phase(15000.0, 0.7, 5000.0, 0.5)
    assert policy.current_delay() == pytest.approx(estimate)


def test_disabled_policy():
    policy = DelayedCompactionPolicy(0.0)
    assert not policy.enabled


# ---------------------------------------------------------------- plan

def test_baseline_plan_is_all_off():
    plan = MitigationPlan.baseline()
    assert plan.is_baseline
    assert not plan.randomize_compaction_trigger
    assert plan.compaction_delay_s == 0.0
    assert isinstance(plan.l0_trigger_policy(4, random.Random(0)), StaticL0Trigger)


def test_paper_solution_plan():
    plan = MitigationPlan.paper_solution()
    assert plan.randomize_compaction_trigger
    assert plan.compaction_delay_s == 1.0
    assert plan.flush_threads is None and plan.compaction_threads is None
    assert isinstance(plan.l0_trigger_policy(4, random.Random(0)), RandomizedL0Trigger)


def test_full_plan_sets_pool_sizes():
    plan = MitigationPlan.full()
    assert plan.pool_sizes(16, 16) == (16, 4)


def test_pool_size_overrides():
    plan = MitigationPlan(flush_threads=8)
    assert plan.pool_sizes(16, 16) == (8, 16)


def test_plan_validation():
    with pytest.raises(ConfigurationError):
        MitigationPlan(trigger_spread=0)
    with pytest.raises(ConfigurationError):
        MitigationPlan(compaction_delay_s=-1.0)
    with pytest.raises(ConfigurationError):
        MitigationPlan(flush_threads=0)
    with pytest.raises(ConfigurationError):
        MitigationPlan(compaction_threads=0)
