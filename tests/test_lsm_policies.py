"""Unit tests for the mitigation zoo: registry, per-policy behavior,
and the policy label threaded through jobs, spans and spike blame."""

from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError
from repro.lsm import (
    DEFAULT_POLICY,
    KiB,
    LSMOptions,
    LSMStore,
    make_policy,
    policy_class,
    policy_names,
    register_policy,
)
from repro.lsm.levels import CompactionPick
from repro.lsm.policies import CompactionPolicy
from repro.lsm.sstable import SSTable

SMALL = dict(
    write_buffer_size=2 * KiB,
    l0_compaction_trigger=2,
    max_bytes_for_level_base=4 * KiB,
)


def make_store(policy, name="store", **params):
    options = LSMOptions(compaction_policy=policy,
                         compaction_policy_params=params or None, **SMALL)
    return LSMStore(options, name=name)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------


def test_registry_contains_the_zoo():
    names = policy_names()
    assert DEFAULT_POLICY == "reference"
    for expected in ("reference", "vlsm_partial", "greedy_minor",
                     "round_robin", "flush_first", "fair_tokens"):
        assert expected in names
    assert names == sorted(names)


def test_duplicate_registration_rejected():
    with pytest.raises(ConfigurationError, match="already registered"):
        @register_policy("reference")
        class Impostor(CompactionPolicy):  # pragma: no cover - never used
            def choose(self, levels, trigger):
                return None


def test_unknown_policy_lists_available():
    with pytest.raises(ConfigurationError, match="reference"):
        policy_class("no_such_policy")
    with pytest.raises(ConfigurationError, match="no_such_policy"):
        make_policy("no_such_policy")


def test_bad_params_raise_configuration_error():
    with pytest.raises(ConfigurationError, match="bad params"):
        make_policy("reference", params={"bogus_knob": 1})
    with pytest.raises(ConfigurationError):
        make_policy("vlsm_partial", params={"max_l0_files": 0})
    with pytest.raises(ConfigurationError):
        make_policy("flush_first", params={"hold_s": 0.0})
    with pytest.raises(ConfigurationError):
        make_policy("flush_first", params={"hold_s": 1.0, "max_hold_s": 0.5})
    with pytest.raises(ConfigurationError):
        make_policy("fair_tokens", params={"rate_mb_s": -1.0})


def test_options_validate_policy_eagerly():
    with pytest.raises(ConfigurationError):
        LSMOptions(compaction_policy="no_such_policy", **SMALL)
    with pytest.raises(ConfigurationError):
        LSMOptions(compaction_policy_params="not-a-dict", **SMALL)


def test_install_compaction_policy_by_name_and_instance():
    store = make_store("reference")
    store.install_compaction_policy("greedy_minor")
    assert store.policy.name == "greedy_minor"
    store.install_compaction_policy(make_policy("round_robin"))
    assert store.policy.name == "round_robin"


# ----------------------------------------------------------------------
# per-policy behavior
# ----------------------------------------------------------------------


def _flush_n_l0_tables(store, n):
    for r in range(n):
        store.put(f"k{r}".encode(), b"x" * 64)
        job = store.begin_flush(now=float(r))
        store.finish_flush(job, now=float(r))


def test_vlsm_partial_merges_oldest_suffix():
    store = make_store("vlsm_partial", max_l0_files=2)
    _flush_n_l0_tables(store, 4)
    assert len(store.levels.idle_l0()) == 4
    job = store.pick_compaction(now=10.0)
    assert job is not None
    pick = job.pick
    assert pick.source_level == 0 and pick.target_level == 1
    assert len(pick.inputs) == 2
    # the two oldest L0 files merged; the two newest stay behind
    merged = sorted(t.created_at for t in pick.inputs)
    left = sorted(t.created_at for t in store.levels.idle_l0())
    assert merged == [0.0, 1.0]
    assert left == [2.0, 3.0]


def test_vlsm_partial_defaults_limit_to_trigger():
    store = make_store("vlsm_partial")
    _flush_n_l0_tables(store, 5)
    job = store.pick_compaction(now=10.0)
    # trigger is 2 → partial merge of the 2 oldest, not all 5
    assert len(job.pick.inputs) == 2


class StubLevels:
    """Just enough LevelManager surface for choose() unit tests."""

    num_levels = 4

    def __init__(self, l0=None, ratios=(), picks=()):
        self._l0 = l0
        self._ratios = list(ratios)
        self._picks = dict(picks)

    def build_l0_pick(self, trigger=None, max_files=None):
        return self._l0

    def overflow_ratios(self):
        return list(self._ratios)

    def overflow_ratio(self, level):
        return dict(self._ratios).get(level, 0.0)

    def peek_overflow_level(self):
        over = [(r, lvl) for lvl, r in self._ratios if r > 1.0]
        return max(over)[1] if over else None

    def build_level_pick(self, level):
        return self._picks.get(level)

    def l0_compaction_in_flight(self):
        return False


def _pick(nbytes, source):
    table = SSTable([(b"a", b"v")], nbytes, level=source)
    return CompactionPick([table], source, source + 1, reason="test")


def test_greedy_minor_runs_smallest_candidate_first():
    policy = make_policy("greedy_minor")
    levels = StubLevels(
        l0=_pick(500, 0),
        ratios=[(1, 1.5), (2, 2.0)],
        picks={1: _pick(100, 1), 2: _pick(300, 2)},
    )
    chosen = policy.choose(levels, trigger=2)
    assert chosen.source_level == 1 and chosen.input_bytes == 100


def test_greedy_minor_ties_break_toward_shallower_level():
    policy = make_policy("greedy_minor")
    levels = StubLevels(
        l0=_pick(100, 0),
        ratios=[(1, 1.5)],
        picks={1: _pick(100, 1)},
    )
    assert policy.choose(levels, trigger=2).source_level == 0


def test_round_robin_cursor_walks_levels_and_resets():
    policy = make_policy("round_robin")
    levels = StubLevels(
        l0=_pick(100, 0),
        ratios=[(1, 1.5)],
        picks={1: _pick(100, 1)},
    )
    assert policy.choose(levels, trigger=2).source_level == 0
    assert policy.describe()["cursor"] == 1
    assert policy.choose(levels, trigger=2).source_level == 1
    assert policy.describe()["cursor"] == 2
    # level 2 has no work: the cursor wraps back around to L0
    assert policy.choose(levels, trigger=2).source_level == 0
    policy.reset()
    assert policy.describe()["cursor"] == 0 and policy.picks == 0


def test_flush_first_holds_while_flushes_queued():
    policy = make_policy("flush_first", params={"hold_s": 0.05,
                                                "max_hold_s": 0.2})
    node = SimpleNamespace(flush_pool=SimpleNamespace(backlog=0))
    assert policy.submission_hold(0.0, node=node) == 0.0
    node.flush_pool.backlog = 3
    assert policy.submission_hold(1.0, node=node) == pytest.approx(0.05)
    assert policy.submission_hold(1.1, node=node) == pytest.approx(0.05)
    # anti-starvation: after max_hold_s of deferral the hold lifts
    assert policy.submission_hold(1.25, node=node) == 0.0
    # backlog drains → the episode resets and a new burst holds again
    node.flush_pool.backlog = 0
    assert policy.submission_hold(2.0, node=node) == 0.0
    node.flush_pool.backlog = 1
    assert policy.submission_hold(3.0, node=node) == pytest.approx(0.05)


def test_fair_tokens_bucket_math():
    policy = make_policy("fair_tokens", params={"rate_mb_s": 10.0,
                                                "burst_mb": 5.0})
    assert policy.submission_hold(0.0) == 0.0
    policy.on_submitted(SimpleNamespace(input_bytes=15_000_000), now=0.0)
    # 10 MB in deficit at 10 MB/s → a 1 s hold
    assert policy.submission_hold(0.0) == pytest.approx(1.0)
    # half the deficit refills after 0.5 s
    assert policy.submission_hold(0.5) == pytest.approx(0.5)
    assert policy.submission_hold(1.0) == 0.0
    policy.on_submitted(SimpleNamespace(input_bytes=1_000_000), now=1.0)
    policy.reset()
    assert policy.submission_hold(1.0) == 0.0
    assert policy.describe() == {"name": "fair_tokens",
                                 "rate_mb_s": 10.0, "burst_mb": 5.0}


def test_policy_reset_runs_on_checkpoint_restore():
    store = make_store("round_robin")
    _flush_n_l0_tables(store, 4)
    job = store.pick_compaction(now=10.0)
    assert job is not None and store.policy.picks == 1
    store.finish_compaction(job, now=10.0)
    snapshot = store.snapshot_state()
    store.restore_from_checkpoint(snapshot)
    assert store.policy.picks == 0


# ----------------------------------------------------------------------
# the policy label: job → span → spike blame (satellite: attribution)
# ----------------------------------------------------------------------


def test_compaction_job_carries_policy_and_generation():
    store = make_store("greedy_minor")
    _flush_n_l0_tables(store, 4)
    job = store.pick_compaction(now=10.0)
    assert job.policy == "greedy_minor"
    args = job.trace_args()
    assert args["policy"] == "greedy_minor"
    assert args["generation"] == store.generation


def test_collector_span_carries_policy_label():
    from repro.metrics.collector import MetricsCollector
    from repro.sim import JobPhase, ProcessorSharingResource, SimJob, \
        SimThreadPool, Simulator

    sim = Simulator(seed=1)
    cpu = ProcessorSharingResource(sim, "cpu", 4.0)
    pool = SimThreadPool(sim, "node0/compaction", 1)
    collector = MetricsCollector()
    collector.watch_pool(pool, "node0")
    pool.submit(
        SimJob(
            "compaction-1",
            "compaction",
            [JobPhase(cpu, 1.0, demand=1.0)],
            metadata={"stage": "s0", "instance": 0, "input_bytes": 10,
                      "policy": "fair_tokens"},
        )
    )
    sim.run()
    (span,) = collector.spans.spans(kind="compaction")
    assert span.policy == "fair_tokens"


def test_spans_from_trace_reads_policy_arg():
    from repro.analysis.millibottleneck import spans_from_trace
    from repro.trace import TraceEvent

    events = [
        TraceEvent("compaction-1", "compaction", "X", 1.0, dur=0.5,
                   tid="node0/compaction",
                   args={"stage": "s0", "policy": "vlsm_partial"}),
        TraceEvent("compaction-2", "compaction", "X", 1.2, dur=0.2,
                   tid="node0/compaction", args={"stage": "s0"}),
    ]
    log = spans_from_trace(events)
    assert [s.policy for s in log] == ["vlsm_partial", ""]


def test_detect_blames_policies_inside_spike_window():
    from repro.analysis.millibottleneck import detect
    from repro.metrics.spans import ActivitySpan, SpanLog

    times = [i * 0.1 for i in range(20)]
    p999 = [0.1] * 20
    p999[10] = 2.0  # one spike at t = 1.0
    spans = SpanLog()
    spans.add(ActivitySpan("flush", "f", "s0", 0, "node0", 0.8, 1.0))
    spans.add(ActivitySpan("compaction", "c1", "s0", 0, "node0", 0.9, 1.1,
                           policy="vlsm_partial"))
    spans.add(ActivitySpan("compaction", "c2", "s0", 0, "node0", 0.95, 1.05,
                           policy=""))
    report = detect(times, p999, spans=spans, threshold=1.0)
    (spike,) = report.spikes
    assert spike.attributed
    assert spike.policies == ["vlsm_partial"]


def test_spike_attribution_roundtrip_and_back_compat():
    from repro.analysis.millibottleneck import SpikeAttribution

    spike = SpikeAttribution(
        peak_time=1.0, peak_s=2.0, window=(0.5, 1.5), flush_spans=1,
        compaction_spans=2, overlap_s=0.2, cpu_saturated_fraction=None,
        checkpoint_index=0, policies=["vlsm_partial"],
    )
    data = spike.to_dict()
    assert data["policies"] == ["vlsm_partial"]
    assert SpikeAttribution.from_dict(data) == spike
    # pre-policy artifacts deserialize with an empty blame list
    legacy = dict(data)
    del legacy["policies"]
    assert SpikeAttribution.from_dict(legacy).policies == []
