"""Unit tests for the SILK-style scheduler baseline."""

import pytest

from repro.config import CheckpointConfig, ClusterConfig, CostModel
from repro.core import SilkPolicy, install_silk_pauses
from repro.errors import ConfigurationError
from repro.stream import ConstantSource, StageSpec, StreamJob


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        SilkPolicy(throttled_compaction_threads=0)
    with pytest.raises(ConfigurationError):
        SilkPolicy(pause_hysteresis_s=-1.0)


def test_policy_as_plan_only_sets_pool():
    plan = SilkPolicy(throttled_compaction_threads=2).as_mitigation_plan()
    assert plan.compaction_threads == 2
    assert not plan.randomize_compaction_trigger
    assert plan.compaction_delay_s == 0.0


def make_job(policy):
    job = StreamJob(
        stages=[StageSpec("s", parallelism=4, state_entry_bytes=200.0,
                          distinct_keys=2000)],
        source=ConstantSource(2000.0),
        cluster=ClusterConfig(num_nodes=1, cores_per_node=4),
        checkpoint=CheckpointConfig(interval_s=4.0, first_at_s=4.0),
        cost=CostModel(cpu_seconds_per_message=0.0002),
        mitigation=policy.as_mitigation_plan(),
        seed=5,
    )
    install_silk_pauses(job, policy)
    return job


def test_compaction_pool_paused_during_flush():
    policy = SilkPolicy(throttled_compaction_threads=3)
    job = make_job(policy)
    node = job.nodes[0]
    sizes = {}

    def probe_during():
        sizes["during"] = node.compaction_pool.size

    def probe_after():
        sizes["after"] = node.compaction_pool.size

    job.sim.schedule(4.001, probe_during)          # first flush active
    job.sim.schedule(7.5, probe_after)             # flushes long done
    job.run(8.5)
    assert sizes["during"] == 1                    # paused
    assert sizes["after"] == 3                     # restored


def test_compactions_still_complete_under_silk():
    policy = SilkPolicy()
    job = make_job(policy)
    job.run(30.0)
    compactions = job.collector.spans.spans(kind="compaction")
    assert compactions, "SILK starved compaction entirely"
    for instance in job.stage("s").instances:
        assert instance.store.l0_file_count <= 5


def test_hysteresis_keeps_pause_across_interleaved_flushes():
    policy = SilkPolicy(pause_hysteresis_s=10.0)  # longer than the test
    job = make_job(policy)
    node = job.nodes[0]
    sizes = {}
    job.sim.schedule(7.9, lambda: sizes.setdefault("late", node.compaction_pool.size))
    job.run(8.0)
    assert sizes["late"] == 1  # restore never fired within hysteresis
