"""Tests for the parallel experiment executor and RunSummary."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.parallel import (
    RunSpec,
    _resolve_jobs,
    execute_spec,
    run_grid,
    sweep,
)
from repro.experiments.runner import ExperimentSettings
from repro.experiments.summary import RunSummary

SHORT = ExperimentSettings(duration_s=30.0, warmup_s=10.0, seed=3)


@pytest.fixture(scope="module")
def short_specs():
    return [
        RunSpec(settings=SHORT.with_seed(seed), label=f"seed{seed}")
        for seed in (3, 4, 5)
    ]


@pytest.fixture(scope="module")
def serial_summaries(short_specs):
    return run_grid(short_specs, jobs=1, cache=False)


class TestRunSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            RunSpec(kind="bogus")

    def test_rejects_unknown_storage(self):
        with pytest.raises(ConfigurationError):
            RunSpec(storage="floppy")

    def test_with_seed_changes_only_seed(self):
        spec = RunSpec(settings=SHORT)
        reseeded = spec.with_seed(99)
        assert reseeded.settings.seed == 99
        assert reseeded.settings.duration_s == SHORT.duration_s

    def test_label_excluded_from_key(self):
        a = RunSpec(settings=SHORT, label="a")
        b = RunSpec(settings=SHORT, label="b")
        assert a.key_dict() == b.key_dict()


class TestRunSummary:
    def test_dict_roundtrip_is_exact(self, serial_summaries):
        for summary in serial_summaries:
            wire = json.loads(json.dumps(summary.to_dict()))
            restored = RunSummary.from_dict(wire)
            assert restored.to_dict() == summary.to_dict()

    def test_alignment_keys_restored_as_ints(self, serial_summaries):
        summary = serial_summaries[0]
        wire = json.loads(json.dumps(summary.to_dict()))
        restored = RunSummary.from_dict(wire)
        for key in restored.per_checkpoint_compactions:
            assert isinstance(key, int)

    def test_tails_contain_standard_quantiles(self, serial_summaries):
        for summary in serial_summaries:
            assert set(summary.tails) == {"p50", "p95", "p99", "p999", "max"}
            assert summary.p999 == summary.tails["p999"]

    def test_peak_p999_tracks_coarse_timeline(self, serial_summaries):
        summary = serial_summaries[0]
        assert summary.peak_p999 == max(summary.coarse_p999)


class TestDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self, short_specs,
                                                 serial_summaries):
        parallel = run_grid(short_specs, jobs=4, cache=False)
        assert [s.to_dict() for s in parallel] == [
            s.to_dict() for s in serial_summaries
        ]

    def test_serial_rerun_is_reproducible(self, short_specs,
                                          serial_summaries):
        again = run_grid(short_specs, jobs=1, cache=False)
        assert [s.to_dict() for s in again] == [
            s.to_dict() for s in serial_summaries
        ]

    def test_results_in_submission_order(self, short_specs, serial_summaries):
        assert [s.label for s in serial_summaries] == [
            spec.label for spec in short_specs
        ]
        assert [s.seed for s in serial_summaries] == [3, 4, 5]


class TestSweep:
    def test_sweep_preserves_value_order(self):
        out = sweep(
            [0.0, 0.5],
            lambda d: RunSpec(settings=SHORT, label=f"d{d}"),
            jobs=2,
            cache=False,
        )
        assert [s.label for s in out] == ["d0.0", "d0.5"]

    def test_execute_spec_matches_run_grid(self, short_specs,
                                           serial_summaries):
        direct = execute_spec(short_specs[0])
        assert direct.to_dict() == serial_summaries[0].to_dict()


def test_resolve_jobs():
    assert _resolve_jobs(None) == 1
    assert _resolve_jobs(3) == 3
    assert _resolve_jobs(0) >= 1
    assert _resolve_jobs(-1) >= 1
