"""Behavioural tests for the overload-protection loop: token-bucket
shedding, SLO-guard trip/recovery with its actuators, watchdog
supervision, and upload retry/circuit-breaking — on a small job."""

import pytest

from repro.config import CheckpointConfig, ClusterConfig
from repro.faults import FaultPlan, FaultSpec
from repro.resilience import ResilienceConfig
from repro.resilience.shedding import LoadShedder
from repro.sim import Simulator
from repro.stream.engine import StreamJob
from repro.stream.sources import ConstantSource
from repro.stream.stage import StageSpec
from repro.trace import Tracer

DURATION = 60.0


def small_job(seed=3, faults=None, tracer=None, resilience=None):
    return StreamJob(
        stages=[
            StageSpec(name="a", parallelism=2, state_entry_bytes=600.0,
                      distinct_keys=3000, selectivity=0.5),
            StageSpec(name="b", parallelism=2, state_entry_bytes=400.0,
                      distinct_keys=1500, selectivity=0.0),
        ],
        source=ConstantSource(1500.0),
        cluster=ClusterConfig(num_nodes=2, cores_per_node=4),
        checkpoint=CheckpointConfig(interval_s=4.0, first_at_s=4.0),
        seed=seed,
        faults=faults,
        tracer=tracer,
        resilience=resilience,
    )


def plan_of(*faults) -> FaultPlan:
    return FaultPlan(name="test", faults=tuple(faults))


# ----------------------------------------------------------------------
# LoadShedder (unit)
# ----------------------------------------------------------------------


def test_shedder_disengaged_is_pass_through():
    sim = Simulator(seed=1)
    shedder = LoadShedder(sim, limit_rate=100.0, burst_s=1.0)
    applied = []
    shedder.apply_rate = applied.append
    assert shedder.offer(500.0) == 500.0
    sim.run_for(5.0)
    shedder.finalize(sim.now)
    assert shedder.shed_messages == 0.0
    assert shedder.windows == []
    assert applied == []  # never touched the rate


def test_shedder_burst_then_clamp_counts_exact_excess():
    sim = Simulator(seed=1)
    shedder = LoadShedder(sim, limit_rate=100.0, burst_s=1.0)  # 100-msg bucket
    applied = []
    shedder.apply_rate = applied.append
    assert shedder.offer(200.0) == 200.0
    shedder.engage()
    # excess is 100/s against a 100-msg bucket: exhaustion after 1 s,
    # then the admitted rate clamps to the limit
    sim.run_for(3.0)
    assert applied == [pytest.approx(100.0)]
    shedder.finalize(sim.now)
    # shed for 2 s at 100/s excess
    assert shedder.shed_messages == pytest.approx(200.0)
    sim2_now = sim.now
    shedder.disengage()
    assert shedder.windows == [(0.0, pytest.approx(sim2_now))]
    assert applied[-1] == pytest.approx(200.0)  # full offered rate again
    assert shedder.engagements == 1


def test_shedder_under_limit_offers_pass_untouched():
    sim = Simulator(seed=1)
    shedder = LoadShedder(sim, limit_rate=100.0, burst_s=0.0)
    applied = []
    shedder.apply_rate = applied.append
    shedder.offer(80.0)
    shedder.engage()
    sim.run_for(2.0)
    shedder.finalize(sim.now)
    assert shedder.shed_messages == 0.0
    assert shedder.admitted == 80.0


# ----------------------------------------------------------------------
# SLO guard: trip, actuators, recovery (integration)
# ----------------------------------------------------------------------


def overload_config(**overrides):
    base = dict(latency_slo_s=1.5, trip_samples=3, recovery_samples=8,
                recovery_factor=0.5)
    base.update(overrides)
    return ResilienceConfig(**base)


def run_overloaded_job(tracer=None, config=None):
    """Drive the source far above capacity for a few seconds mid-run."""
    job = small_job(tracer=tracer, resilience=config or overload_config())
    sim = job.sim
    sim.schedule(10.0, lambda: job.set_source_rate(30000.0))
    sim.schedule(16.0, lambda: job.set_source_rate(1500.0))
    result = job.run(DURATION)
    return job, result


def test_guard_trips_sheds_and_recovers():
    tracer = Tracer()
    job, _result = run_overloaded_job(tracer=tracer)
    guard = job.resilience.guard
    assert guard.trips == 1
    assert guard.mode == "normal"  # recovered before the end
    (window,) = guard.degraded_windows
    assert 10.0 < window[1] < window[2] < DURATION
    shedder = job.resilience.shedder
    assert shedder.shed_messages > 0
    assert shedder.engagements == 1
    trip = tracer.select(cat="resilience", name="slo-trip")
    recover = tracer.select(cat="resilience", name="slo-recover")
    engage = tracer.select(cat="resilience", name="shed-engage")
    disengage = tracer.select(cat="resilience", name="shed-disengage")
    assert len(trip) == len(recover) == len(engage) == len(disengage) == 1
    assert trip[0].ts <= engage[0].ts
    assert recover[0].ts > trip[0].ts


def test_guard_actuators_engage_and_restore():
    job, _result = run_overloaded_job()
    config = job.resilience.config
    # after recovery everything is back to normal
    for node in job.nodes:
        assert node.compaction_pool.size > config.compaction_threads_degraded
    assert job.coordinator.interval_scale == 1.0
    # the trip actually actuated: the guard log shows both actions
    actions = [a["action"] for a in job.resilience.guard.actions]
    assert actions == ["slo-trip", "slo-recover"]
    # while degraded the backlog was bounded by shedding
    assert job.resilience.guard.max_queue_messages < 300_000


def test_guard_is_inert_when_healthy():
    baseline = small_job(seed=11).run(DURATION).tail_summary(start=10.0)
    guarded_job = small_job(seed=11, resilience=ResilienceConfig())
    guarded = guarded_job.run(DURATION).tail_summary(start=10.0)
    assert guarded == baseline  # byte-identical trajectory
    guard = guarded_job.resilience.guard
    assert guard.trips == 0
    assert guard.samples_taken > 200
    assert guarded_job.resilience.shedder.shed_messages == 0.0


# ----------------------------------------------------------------------
# watchdog (integration)
# ----------------------------------------------------------------------


def test_watchdog_restarts_stuck_flush_pool():
    plan = plan_of(FaultSpec(kind="flush_stall", at_s=10.0, duration_s=12.0,
                             node=0))
    tracer = Tracer()
    config = ResilienceConfig(watchdog_stuck_s=3.0, watchdog_cooldown_s=100.0)
    job = small_job(faults=plan, tracer=tracer, resilience=config)
    job.run(DURATION)
    pool = job.nodes[0].flush_pool
    assert pool.restarts  # the watchdog force-restarted it mid-stall
    assert 13.0 <= pool.restarts[0] <= 16.0
    assert not pool.paused  # the fault's late resume was forgiven
    restarts = job.resilience.watchdog.pool_restarts
    assert restarts and restarts[0]["target"] == "node0-flush"
    assert restarts[0]["cleared_pauses"] == 1
    instants = tracer.select(cat="resilience", name="watchdog-pool-restart")
    assert [e.ts for e in instants] == [pytest.approx(pool.restarts[0])]
    assert not job.invariant_checker.violations


def test_watchdog_restarts_hung_worker_through_restore_path():
    """A flush submitted into a stalled pool leaves its instance blocked
    (a hung worker).  With the pool check effectively disabled, the
    worker check must restart the instance through the restore path and
    the zombie flush's eventual completion must be discarded."""
    plan = plan_of(FaultSpec(kind="flush_stall", at_s=10.0, duration_s=20.0,
                             node=0))
    tracer = Tracer()
    config = ResilienceConfig(watchdog_stuck_s=1000.0,
                              watchdog_worker_stuck_s=4.0)
    job = small_job(faults=plan, tracer=tracer, resilience=config)
    # probe after the stall clears (t=30) but before the run-final
    # checkpoint leaves fresh flushes legitimately in flight
    recovered = {}
    job.sim.schedule(35.0, lambda: recovered.update(
        (inst.name, inst.blocked)
        for inst in job.nodes[0].instances
    ))
    result = job.run(DURATION)
    actions = job.resilience.watchdog.worker_restarts
    assert actions
    first = actions[0]
    restarted = next(
        inst for node in job.nodes for inst in node.instances
        if inst.name == first["target"]
    )
    assert restarted.node.name == "node0"
    assert restarted.restart_epoch >= 1
    assert first["stuck_s"] >= 4.0
    assert first["restored_checkpoint"] >= 1  # rewound to a real snapshot
    # the zombie flushes drained once the stall lifted; nobody is hung
    assert recovered and not any(recovered.values())
    instants = tracer.select(cat="resilience", name="watchdog-worker-restart")
    assert [e.ts for e in instants][0] == pytest.approx(first["time"])
    assert result.invariant_violations == []


# ----------------------------------------------------------------------
# resilient uploads (integration)
# ----------------------------------------------------------------------


def test_upload_deadline_misses_retry_then_trip_breaker():
    tracer = Tracer()
    config = ResilienceConfig(upload_deadline_s=1e-6, retry_attempts=2,
                              retry_base_delay_s=0.05, breaker_failures=3,
                              breaker_reset_s=1000.0)
    job = small_job(tracer=tracer, resilience=config)
    result = job.run(DURATION)
    uploads = job.resilience.uploader.report()
    assert uploads["timeouts"] >= 3
    assert uploads["retries"] >= 1
    assert uploads["exhausted"]  # some checkpoint spent every attempt
    assert uploads["breaker_state"] == "open"
    assert uploads["shed"]  # later uploads rejected outright
    assert tracer.select(cat="resilience", name="upload-timeout")
    assert tracer.select(cat="resilience", name="upload-retry")
    assert tracer.select(cat="resilience", name="retry-exhausted")
    assert tracer.select(cat="resilience", name="breaker-open")
    assert tracer.select(cat="resilience", name="upload-shed")
    # shedding uploads must not corrupt the run itself
    assert result.invariant_violations == []


# ----------------------------------------------------------------------
# summaries
# ----------------------------------------------------------------------


def test_result_summary_carries_resilience_digest():
    job, result = run_overloaded_job()
    summary = result.summary()
    digest = summary["resilience"]
    assert digest["trips"] == 1
    assert digest["mode"] == "normal"
    assert digest["shed"]["messages"] > 0
    assert digest["config"]["latency_slo_s"] == 1.5
    assert result.resilience_windows  # degraded + load-shed spans
    labels = {label for label, _s, _e in result.resilience_windows}
    assert labels == {"degraded", "load-shed"}


def test_unguarded_summary_has_no_resilience_key():
    result = small_job().run(20.0)
    assert "resilience" not in result.summary()
    assert result.resilience_report is None
    assert result.resilience_windows == []
