"""Integration tests: the traffic benchmark reproduces the paper's story.

These run on the shared session fixtures (one baseline, one mitigated,
one 16 s-staggered run) and assert the *shape* claims of §3 and §5.
"""

import numpy as np
import pytest

from repro.analysis import find_spikes, overlap_report, spike_period
from repro.core import ShadowSyncDetector

WARMUP, DURATION = 40.0, 160.0


def timeline(result, start=WARMUP, end=DURATION):
    return result.latency_timeline(0.999, window=0.5, start=start, end=end)


# ------------------------------------------------------------ §3 baseline

def test_baseline_has_latency_long_tail(traffic_baseline):
    tails = traffic_baseline.tail_summary(start=WARMUP)
    assert tails["p999"] > 1.5          # seconds-scale tail ...
    assert tails["p50"] < 0.5           # ... on a sub-second median


def test_baseline_spikes_recur_every_fourth_checkpoint(traffic_baseline):
    times, p999 = timeline(traffic_baseline)
    spikes = find_spikes(times, p999, threshold=1.0)
    assert len(spikes) >= 3
    assert spike_period(spikes) == pytest.approx(32.0, abs=2.0)  # 4 x 8 s


def test_compaction_bursts_align_with_spikes(traffic_baseline):
    times, p999 = timeline(traffic_baseline)
    spikes = find_spikes(times, p999, threshold=1.0)
    _t, comp = traffic_baseline.concurrency("compaction", WARMUP, DURATION)
    grid = np.arange(WARMUP, DURATION, 0.05)
    for spike in spikes:
        window = (grid >= spike.start - 2.0) & (grid <= spike.end + 2.0)
        assert comp[window].max() >= 32, "spike without a compaction burst"


def test_cpu_saturates_during_spikes(traffic_baseline):
    times, p999 = timeline(traffic_baseline)
    spikes = find_spikes(times, p999, threshold=1.0)
    cpu = traffic_baseline.cpu_series("node0")
    for spike in spikes:
        assert cpu.maximum(spike.start - 1.0, spike.end + 1.0) >= 15.5


def test_average_utilization_is_moderate(traffic_baseline):
    """The paper's point: the tail appears at ~75 % average CPU."""
    cpu = traffic_baseline.cpu_series("node0")
    average = cpu.time_average(WARMUP, DURATION)
    assert 11.0 <= average <= 14.5  # ~70-90 % of 16 cores


def test_flush_and_compaction_overlap_in_baseline(traffic_baseline):
    report = overlap_report(traffic_baseline.spans, WARMUP, DURATION)
    assert report.flush_compaction_overlap_s > 0.0
    assert report.peak_compaction_concurrency >= 32


def test_statistical_alignment_both_stages_same_checkpoint(traffic_baseline):
    """initial_l0='aligned' puts s0 and s1 bursts in the same period."""
    stats = traffic_baseline.checkpoint_stats()
    joint = [
        row
        for row in stats
        if row.compaction_count.get("s0", 0) >= 32
        and row.compaction_count.get("s1", 0) >= 32
    ]
    assert joint, "no checkpoint with joint s0+s1 compaction burst"


def test_detector_flags_baseline_as_shadowsync(traffic_baseline):
    times, p999 = traffic_baseline.latency_timeline(
        0.999, window=0.25, start=WARMUP, end=DURATION
    )
    finding = ShadowSyncDetector(spike_threshold_s=1.0).analyze(
        spans=traffic_baseline.spans,
        cpu_series=traffic_baseline.cpu_series("node0"),
        cpu_capacity=16.0,
        latency_times=times,
        latency_values=p999,
        checkpoint_times=traffic_baseline.coordinator.checkpoint_times(),
        stages=["s0", "s1"],
        window=(WARMUP, DURATION),
    )
    assert finding.classification == "statistical"
    assert finding.spike_match_fraction >= 0.5


# ------------------------------------------------------------ §3.2 16 s run

def test_staggered_16s_spikes_alternate_between_stages(traffic_staggered_16s):
    stats = traffic_staggered_16s.checkpoint_stats()
    bursts = [
        ("s0" if row.compaction_count.get("s0", 0) >= 32 else "s1")
        for row in stats
        if sum(row.compaction_count.values()) >= 32 and row.time >= WARMUP
    ]
    assert len(bursts) >= 3
    assert all(a != b for a, b in zip(bursts, bursts[1:])), bursts


def test_staggered_16s_flush_spans_shorter_than_compactions(traffic_staggered_16s):
    flushes = traffic_staggered_16s.flush_spans(window=(WARMUP, 200.0))
    compactions = traffic_staggered_16s.compaction_spans(window=(WARMUP, 200.0))
    mean_flush = np.mean([s.duration for s in flushes])
    mean_comp = np.mean([s.duration for s in compactions])
    assert mean_comp > 3.0 * mean_flush  # Figure 7's contrast


# ------------------------------------------------------------ §5 solution

def test_solution_removes_large_spikes(traffic_baseline, traffic_solution):
    _t, base = timeline(traffic_baseline)
    _t, sol = timeline(traffic_solution)
    assert base.max() > 1.8
    assert sol.max() < 1.0


def test_solution_tail_reduction_matches_paper_shape(
    traffic_baseline, traffic_solution
):
    base = traffic_baseline.tail_summary(start=WARMUP)
    sol = traffic_solution.tail_summary(start=WARMUP)
    assert sol["p999"] / base["p999"] < 0.45   # paper: < 0.2 on their testbed
    assert sol["p95"] / base["p95"] < 0.50     # paper: < 0.5


def test_solution_spreads_compactions_across_checkpoints(traffic_solution):
    counts = traffic_solution.spans.per_cycle_counts(
        traffic_solution.coordinator.checkpoint_times(), kind="compaction"
    )
    active = [c for t, c in sorted(counts.items()) if c > 0]
    assert len(active) >= 8          # spread over many checkpoints
    assert max(active) < 129         # never the full synchronized burst


def test_solution_throughput_not_sacrificed(traffic_baseline, traffic_solution):
    """Mitigations must not starve compaction: all L0 debt is paid."""
    for result in (traffic_baseline, traffic_solution):
        for stage in result.job.stages:
            for instance in stage.instances:
                if instance.store is not None:
                    assert instance.store.l0_file_count <= 8
