"""Unit tests for the application builders."""

import pytest

from repro.apps import (
    INITIAL_L0_PRESETS,
    TRAFFIC_STAGES,
    WORDCOUNT_STAGES,
    build_traffic_job,
    build_wordcount_job,
)
from repro.errors import ConfigurationError
from repro.storage import NVME_SSD


def test_traffic_stage_shape_matches_paper():
    parallelism = [s.parallelism for s in TRAFFIC_STAGES]
    assert parallelism == [64, 64, 1]
    names = [s.name for s in TRAFFIC_STAGES]
    assert names == ["s0", "s1", "s2"]


def test_traffic_deployment_matches_figure4():
    job = build_traffic_job()
    assert len(job.nodes) == 4
    assert all(node.cores == 16 for node in job.nodes)
    assert job.cluster.storage.name == "tmpfs"
    # 129 instances over 4 nodes
    assert sum(len(n.instances) for n in job.nodes) == 129


def test_traffic_presets():
    aligned = build_traffic_job(initial_l0="aligned")
    for instance in aligned.stage("s0").instances:
        assert instance.store.l0_file_count == 0
    staggered = build_traffic_job(initial_l0="staggered")
    assert staggered.stage("s0").instances[0].store.l0_file_count == 2
    assert staggered.stage("s1").instances[0].store.l0_file_count == 0
    assert set(INITIAL_L0_PRESETS) == {"aligned", "staggered"}


def test_traffic_unknown_preset_rejected():
    with pytest.raises(ConfigurationError):
        build_traffic_job(initial_l0="diagonal")


def test_traffic_storage_override():
    job = build_traffic_job(storage=NVME_SSD)
    assert all(node.storage.name == "nvme" for node in job.nodes)


def test_traffic_steady_utilization_calibration():
    """DESIGN.md §5: message processing needs ~12 of 16 cores/node."""
    job = build_traffic_job()
    per_node_rate = 60000.0 / 4
    s0 = job.stage("s0").spec
    s1 = job.stage("s1").spec
    cores_needed = per_node_rate * job.cost.cpu_seconds_per_message * (
        s0.work_multiplier + s1.work_multiplier * s0.selectivity
    )
    assert cores_needed == pytest.approx(12.0, rel=0.05)


def test_wordcount_deployment_matches_section52():
    job = build_wordcount_job()
    assert len(job.nodes) == 1
    assert job.nodes[0].cores == 16
    names = [s.name for s in WORDCOUNT_STAGES]
    assert names == ["split", "count"]
    assert all(s.parallelism == 64 for s in WORDCOUNT_STAGES)
    assert not WORDCOUNT_STAGES[0].stateful


def test_wordcount_cost_targets_70_percent_cpu():
    job = build_wordcount_job(sentence_rate=25000.0)
    cores = 2 * 25000.0 * job.cost.cpu_seconds_per_message
    assert cores == pytest.approx(16 * 0.70, rel=0.01)


def test_seed_changes_run_outcome_deterministically():
    a = build_traffic_job(seed=1).run(30.0)
    b = build_traffic_job(seed=1).run(30.0)
    c = build_traffic_job(seed=2).run(30.0)
    tails_a = a.tail_summary(start=10.0)
    tails_b = b.tail_summary(start=10.0)
    assert tails_a == tails_b  # bit-for-bit deterministic
    assert tails_a is not tails_b
