"""Shared fixtures.

Full-pipeline runs take ~1-2 s each, so the integration tests share
session-scoped results instead of re-running the simulation per test.
"""

from __future__ import annotations

import os

import pytest

from repro.apps import build_traffic_job, build_wordcount_job
from repro.core import MitigationPlan
from repro.experiments.parallel import CACHE_DIR_ENV


@pytest.fixture(scope="session", autouse=True)
def _isolated_run_cache(tmp_path_factory):
    """Keep experiment-result cache writes out of the repo during tests.

    Tests still benefit from intra-session cache hits (repeated CLI
    smoke runs of the same figure reuse one simulation)."""
    cache_root = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(cache_root)
    yield
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = previous

#: Standard measurement window for the shared runs.
WARMUP = 40.0
DURATION = 160.0


@pytest.fixture(scope="session")
def traffic_baseline():
    job = build_traffic_job(
        checkpoint_interval_s=8.0, initial_l0="aligned", seed=1
    )
    return job.run(DURATION)


@pytest.fixture(scope="session")
def traffic_solution():
    job = build_traffic_job(
        checkpoint_interval_s=8.0,
        initial_l0="aligned",
        seed=1,
        mitigation=MitigationPlan.paper_solution(),
    )
    return job.run(DURATION)


@pytest.fixture(scope="session")
def traffic_staggered_16s():
    job = build_traffic_job(
        checkpoint_interval_s=16.0, initial_l0="staggered", seed=1
    )
    return job.run(200.0)


@pytest.fixture(scope="session")
def wordcount_baseline():
    return build_wordcount_job(seed=2).run(DURATION)


@pytest.fixture(scope="session")
def wordcount_solution():
    return build_wordcount_job(
        seed=2, mitigation=MitigationPlan.paper_solution()
    ).run(DURATION)
