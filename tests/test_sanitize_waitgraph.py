"""Wait-for graph extraction, catalog diff and the shadow-sync audit."""

import json

import pytest

from repro.analysis.millibottleneck import SpikeAttribution, detect
from repro.sanitize.syncgraph import (
    SYNC_CATALOG,
    SyncEdge,
    analyze_sync,
    attribute_spikes,
    diff_against_catalog,
    extract_wait_graph,
    sync_windows,
)
from repro.trace import TraceEvent


def _ev(name, cat, ph, ts, dur=0.0, tid="", **args):
    return TraceEvent(name, cat, ph, ts, dur, tid, args)


@pytest.fixture
def synthetic_trace():
    return [
        # Checkpoint barrier 10..15.
        _ev("checkpoint-1", "checkpoint", "X", 10.0, 5.0, "coordinator",
            checkpoint_id=1),
        # Pool queueing: flush job waited 1.5s, compaction 2.0s.
        _ev("queued:flush-s0", "pool", "X", 2.0, 1.5, "node0-flush",
            kind="flush"),
        _ev("queued:compact-s0", "pool", "X", 3.0, 2.0, "node0-compaction",
            kind="compaction"),
        # Checkpoint-reason flush inside the barrier; memtable flush outside.
        _ev("flush:s0", "flush", "X", 10.5, 2.0, "node0-flush",
            stage="s0", reason="checkpoint"),
        _ev("flush:s1", "flush", "X", 1.0, 0.5, "node0-flush",
            stage="s1", reason="memtable-full"),
        # Compaction overlapping the open barrier by 3s: THE paper edge.
        _ev("compact:s0", "compaction", "X", 12.0, 4.0, "node0-compaction",
            stage="s0"),
        # Pause..resume stall on a pool.
        _ev("pause:node0-flush", "pool", "i", 20.0, tid="node0-flush"),
        _ev("resume:node0-flush", "pool", "i", 22.5, tid="node0-flush"),
        # Fence window on node1.
        _ev("node-fence", "cluster", "i", 30.0, tid="node1"),
        _ev("node-revive", "cluster", "i", 33.0, tid="node1"),
    ]


def test_extract_wait_graph_covers_every_edge_kind(synthetic_trace):
    edges = {e.kind: e for e in extract_wait_graph(synthetic_trace)}
    assert edges["checkpoint-barrier"].blocked_s == pytest.approx(5.0)
    assert edges["pool-stall"].blocked_s == pytest.approx(2.5)
    assert edges["migration-fence"].blocked_s == pytest.approx(3.0)
    assert edges["migration-fence"].src == "node:node1"
    shadow = edges["compaction-during-checkpoint"]
    assert shadow.blocked_s == pytest.approx(3.0)
    assert shadow.windows == [(12.0, 15.0)]
    queue_edges = [
        e for e in extract_wait_graph(synthetic_trace) if e.kind == "pool-queue"
    ]
    assert {e.src for e in queue_edges} == {"job:flush", "job:compaction"}


def test_flush_block_splits_by_reason(synthetic_trace):
    edges = extract_wait_graph(synthetic_trace)
    flushes = {(e.src, e.dst): e for e in edges if e.kind == "flush-block"}
    assert flushes[("stage:s0", "checkpoint")].blocked_s == pytest.approx(2.0)
    assert flushes[("stage:s1", "memtable")].blocked_s == pytest.approx(0.5)


def test_dangling_pause_blocks_to_end_of_trace():
    events = [
        _ev("pause:p", "pool", "i", 5.0, tid="p"),
        _ev("work", "flush", "X", 8.0, 4.0, "p", stage="s0"),
    ]
    (stall,) = [
        e for e in extract_wait_graph(events) if e.kind == "pool-stall"
    ]
    assert stall.windows == [(5.0, 12.0)]


def test_catalog_diff_declares_everything_in_the_full_catalog(synthetic_trace):
    edges, shadows = diff_against_catalog(extract_wait_graph(synthetic_trace))
    assert shadows == []
    declared = {e.kind: e.declared_by for e in edges}
    assert declared["compaction-during-checkpoint"] == (
        "shadow.compaction-checkpoint"
    )
    assert declared["checkpoint-barrier"] == "checkpoint.trigger"
    assert declared["pool-queue"] == "threadpool.submit"


def test_undeclared_edge_is_shadow(synthetic_trace):
    stripped = tuple(p for p in SYNC_CATALOG if p.kind != "shadow")
    edges, shadows = diff_against_catalog(
        extract_wait_graph(synthetic_trace), catalog=stripped
    )
    assert [e.kind for e in shadows] == ["compaction-during-checkpoint"]
    assert all(e.shadow for e in shadows)


def test_attribute_spikes_sums_window_overlap():
    edge = SyncEdge(kind="k", src="a", dst="b",
                    windows=[(0.0, 10.0), (20.0, 21.0)])
    attribute_spikes([edge], [(5.0, 7.0), (9.0, 12.0), (20.5, 30.0)])
    assert edge.spike_overlap_s == pytest.approx(2.0 + 1.0 + 0.5)


def test_sync_edge_round_trips_through_json(synthetic_trace):
    edges, _ = diff_against_catalog(extract_wait_graph(synthetic_trace))
    for edge in edges:
        back = SyncEdge.from_dict(json.loads(json.dumps(edge.to_dict())))
        assert back == edge


def test_detector_labels_spikes_with_sync_edges():
    times = [i * 0.5 for i in range(40)]
    p999 = [0.1] * 40
    p999[20] = 5.0  # spike at t=10
    windows = [("checkpoint-barrier", 9.5, 10.5), ("pool-stall", 50.0, 51.0)]
    report = detect(times, p999, sync_windows=windows)
    (spike,) = report.spikes
    assert spike.sync == ["checkpoint-barrier"]
    # Old cached dicts without the sync field still load.
    legacy = spike.to_dict()
    legacy.pop("sync")
    assert SpikeAttribution.from_dict(legacy).sync == []


def test_sync_windows_feed_shape(synthetic_trace):
    edges = extract_wait_graph(synthetic_trace)
    labeled = sync_windows(edges)
    assert all(len(w) == 3 for w in labeled)
    starts = [w[1] for w in labeled]
    assert starts == sorted(starts)
    assert sum(1 for name, _, _ in labeled if name == "flush-block") == 2


def test_analyze_sync_on_prerecorded_events(synthetic_trace):
    report = analyze_sync(events=synthetic_trace, static=False)
    assert report.ok
    assert report.shadow_edges == []
    assert report.blocked_s > 0
    data = report.to_dict()
    assert data["ok"] is True
    assert data["lint"]["count"] == 0
    assert len(data["catalog"]) == len(SYNC_CATALOG)
    assert json.loads(json.dumps(data)) == data


def test_audit_surfaces_the_paper_edge_on_a_live_baseline_run():
    """Acceptance: on a traced baseline run the audit must surface the
    flush/compaction <-> checkpoint blocking edges with nonzero blocked
    time and an empty static-vs-dynamic diff."""
    report = analyze_sync(
        scenario="baseline_traffic",
        duration_s=40.0,
        warmup_s=5.0,
        seed=7,
        static=False,
    )
    kinds = {e.kind: e for e in report.edges}
    assert report.shadow_edges == []
    assert kinds["compaction-during-checkpoint"].blocked_s > 0
    assert kinds["checkpoint-barrier"].count > 0
    flush_block = [
        e for e in report.edges
        if e.kind == "flush-block" and e.dst == "checkpoint"
    ]
    assert flush_block and all(e.blocked_s > 0 for e in flush_block)
    rendered = report.render()
    assert "compaction-during-checkpoint" in rendered
    assert "clean" in rendered
