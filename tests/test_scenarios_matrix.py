"""Scenario-matrix smoke: every library scenario runs end to end.

Each scenario executes briefly through the two public paths — the
cache-backed RunSpec executor (what ``repro run --scenario`` uses) and
:func:`repro.api.run_scenario` — and must produce finite latencies, a
serializable summary and its own distinct cache key.  Marked slow: CI
runs this lane as the scenario-matrix job.
"""

import math

import pytest

from repro import api
from repro.experiments.parallel import RunSpec, run_grid, spec_cache_key
from repro.scenarios import scenario, scenario_names

SETTINGS = api.ExperimentSettings(duration_s=30.0, warmup_s=10.0, seed=11)

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_runs_through_the_executor(name):
    spec = RunSpec(
        kind="scenario", scenario=scenario(name), settings=SETTINGS,
        label=f"matrix-{name}",
    )
    (summary,) = run_grid([spec], cache=False)
    assert summary.kind == "scenario"
    assert summary.scenario == name
    assert summary.label == f"matrix-{name}"
    tails = summary.tails
    assert set(tails) >= {"p50", "p95", "p99", "p999", "max"}
    assert all(math.isfinite(v) and v > 0.0 for v in tails.values())
    assert tails["p50"] <= tails["p999"] <= tails["max"]
    assert summary.checkpoint_times, "checkpoints must complete"
    assert not summary.invariant_violations
    # the summary survives the cache's round-trip contract
    again = type(summary).from_dict(summary.to_dict())
    assert again.tails == tails and again.scenario == name


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_runs_through_api_run_scenario(name):
    result = api.run_scenario(name, settings=SETTINGS)
    tails = result.tail_summary(start=SETTINGS.warmup_s)
    assert math.isfinite(tails["p999"]) and tails["p999"] > 0.0


def test_every_scenario_has_a_distinct_cache_key():
    keys = {}
    for name in scenario_names():
        spec = RunSpec(kind="scenario", scenario=scenario(name),
                       settings=SETTINGS)
        keys[name] = spec_cache_key(spec)
    assert len(set(keys.values())) == len(keys)
