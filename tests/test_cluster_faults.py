"""Cluster-layer fault kinds: node crash (including mid-migration),
node flap, network partition, and the plan/preset/shrink plumbing."""

import pytest

from repro.cluster import ClusterSpec, MembershipEvent, install_cluster
from repro.config import CheckpointConfig, ClusterConfig
from repro.errors import ConfigurationError
from repro.faults import (
    ALL_FAULT_KINDS,
    CLUSTER_FAULT_KINDS,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    inject_faults,
    preset_plan,
    shrink_failing,
)

from .test_cluster_membership import cluster_spec, hosted_partitions, small_job

DURATION = 50.0


def plan_of(*faults) -> FaultPlan:
    return FaultPlan(name="test", faults=tuple(faults))


def run_clustered(plan, spec=None, duration=DURATION, seed=3):
    job = small_job(seed=seed)
    manager = install_cluster(job, spec if spec is not None else cluster_spec())
    if plan is not None:
        inject_faults(job, plan)
    result = job.run(duration)
    return job, manager, result


# ----------------------------------------------------------------------
# node_crash
# ----------------------------------------------------------------------


def test_node_crash_fails_over_and_rejoins():
    plan = plan_of(FaultSpec(kind="node_crash", at_s=14.0, duration_s=3.0,
                             node=1))
    job, manager, result = run_clustered(plan)
    kinds = {m["kind"] for m in manager.migrations}
    assert "failover" in kinds
    # the detector suspected the silent node, then revived it
    events = [t["event"] for t in manager.detector.transitions]
    assert events.count("suspect") == 1 and events.count("revive") == 1
    # after the rejoin rebalance the node hosts partitions again
    assert "node1" in set(hosted_partitions(job).values())
    assert manager.unowned_partitions() == []
    assert result.invariant_violations == []


def test_node_crash_without_cluster_degrades_to_worker_crash():
    plan = plan_of(FaultSpec(kind="node_crash", at_s=14.0, duration_s=2.0,
                             node=0))
    job = small_job()
    inject_faults(job, plan)
    result = job.run(30.0)
    (event,) = job.fault_injector.events
    assert event["restores"], "classic in-place checkpoint restore expected"
    assert result.invariant_violations == []


def test_crash_during_migration_never_splits_ownership():
    """Satellite: crash the source while its partitions are in flight.

    The scale-out transfer must abort, the crashed node's state must
    fail over from a completed checkpoint, ownership must stay single
    at every event time, and no records may leak.
    """
    spec = ClusterSpec(
        # ~1 MB snapshots at 50 kB/s: transfers run for tens of seconds,
        # so the crash at t=21 lands mid-flight in the t=20 rebalance
        migration_bandwidth_mb_s=0.05,
        transfer_deadline_s=60.0,
        events=(MembershipEvent(action="join", at_s=20.0, count=1),),
    )
    plan = plan_of(FaultSpec(kind="node_crash", at_s=21.0, duration_s=3.0,
                             node=1))
    job, manager, result = run_clustered(plan, spec=spec, duration=70.0)

    aborted = [m for m in manager.migrations if m["status"] == "aborted"]
    assert aborted, "the in-flight transfer should have been cut"
    assert {m["reason"] for m in aborted} == {"source-crashed"}
    assert all(m["source"] == "node1" for m in aborted)

    # every partition the abort stranded was re-shipped by the failover,
    # from a snapshot of a *completed* checkpoint, with its state intact
    failovers = {m["partition"]: m for m in manager.migrations
                 if m["kind"] == "failover"}
    completed_at = {r.triggered_at for r in result.coordinator.records
                    if r.state == "completed"}
    for migration in aborted:
        failover = failovers[migration["partition"]]
        assert failover["status"] == "completed"
        assert failover["snapshot_time"] in completed_at
        assert failover["digest_restored"] == failover["digest_source"]
    # the crash window itself recovered from a pre-crash checkpoint
    assert min(f["snapshot_time"] for f in failovers.values()) <= 21.0

    # single owner at every sampled instant + contiguous flip history
    assert result.invariant_violations == []
    last_owner = {}
    for flip in manager.ownership_log:
        if flip["partition"] in last_owner:
            assert flip["from"] == last_owner[flip["partition"]]
        last_owner[flip["partition"]] = flip["to"]
    assert manager.unowned_partitions() == []
    assert manager.in_flight_migrations() == 0

    # counts match the unfaulted reference: same source volume arrives,
    # per-flow accounting balances (exactly-once up to explicit replay),
    # and the faulted run served no less than the reference
    ref_job, _, ref_result = run_clustered(None, spec=spec, duration=70.0)
    arrived = lambda job_: sum(
        f.total_arrived for f in job_.stages[0].flows.values()
    )
    assert arrived(job) == pytest.approx(arrived(ref_job), rel=1e-6)
    for stage in job.stages:
        for flow in stage.flows.values():
            volume = flow.total_arrived + flow.replayed_messages
            assert abs(flow.accounting_balance()) <= max(1e-3, 1e-7 * volume)
    served = lambda job_: sum(
        f.total_served for f in job_.stages[-1].flows.values()
    )
    replayed = sum(f.replayed_messages for s in job.stages
                   for f in s.flows.values())
    assert served(job) >= served(ref_job) - 1.0
    assert served(job) <= served(ref_job) + replayed + 1.0


# ----------------------------------------------------------------------
# node_flap / network_partition
# ----------------------------------------------------------------------


def test_node_flap_cycles_cleanly():
    plan = plan_of(FaultSpec(kind="node_flap", at_s=14.0, duration_s=9.0,
                             node=1, factor=3.0))
    job, manager, result = run_clustered(plan)
    (event,) = job.fault_injector.events
    assert event["cycles"] == 3
    assert len(event["flaps"]) == 3
    assert all(sub["end"] is not None for sub in event["flaps"])
    assert manager.unowned_partitions() == []
    assert manager.fenced == {}
    assert result.invariant_violations == []


def test_network_partition_suspects_then_heals():
    plan = plan_of(FaultSpec(kind="network_partition", at_s=14.0,
                             duration_s=5.0, node=1))
    job, manager, result = run_clustered(plan)
    events = [t["event"] for t in manager.detector.transitions]
    assert "suspect" in events and "revive" in events
    assert manager.partitioned == set()
    assert manager.unowned_partitions() == []
    assert result.invariant_violations == []


def test_network_partition_without_cluster_is_a_recorded_noop():
    plan = plan_of(FaultSpec(kind="network_partition", at_s=10.0,
                             duration_s=3.0, node=0))
    job = small_job()
    inject_faults(job, plan)
    result = job.run(20.0)
    (event,) = job.fault_injector.events
    assert event["ignored"] == "no cluster layer installed"
    assert result.invariant_violations == []


# ----------------------------------------------------------------------
# plan plumbing: presets, random, shrink
# ----------------------------------------------------------------------


def test_cluster_kinds_extend_but_do_not_reorder_fault_kinds():
    # FAULT_KINDS feeds seeded random plans: reordering it would silently
    # change every recorded soak schedule
    assert FAULT_KINDS == ("worker_crash", "flush_stall", "compaction_stall",
                           "slow_disk", "checkpoint_timeout",
                           "kafka_backpressure")
    assert CLUSTER_FAULT_KINDS == ("node_crash", "node_flap",
                                   "network_partition")
    assert ALL_FAULT_KINDS == FAULT_KINDS + CLUSTER_FAULT_KINDS


@pytest.mark.parametrize("name,kind", [
    ("node-crash", "node_crash"),
    ("node-flap", "node_flap"),
    ("net-partition", "network_partition"),
])
def test_cluster_presets(name, kind):
    plan = preset_plan(name)
    assert [f.kind for f in plan.faults] == [kind]


def test_fault_spec_rejects_unknown_kind_but_takes_cluster_kinds():
    with pytest.raises(ConfigurationError):
        FaultSpec(kind="meteor_strike")
    for kind in CLUSTER_FAULT_KINDS:
        assert FaultSpec(kind=kind, at_s=1.0, duration_s=1.0).kind == kind


def test_random_plans_can_draw_cluster_kinds():
    drawn = set()
    for seed in range(40):
        plan = FaultPlan.random(seed=seed, duration_s=60.0,
                                kinds=ALL_FAULT_KINDS)
        drawn.update(f.kind for f in plan.faults)
    assert drawn <= set(ALL_FAULT_KINDS)
    assert drawn & set(CLUSTER_FAULT_KINDS)
    # node_flap factors are whole cycle counts
    for seed in range(40):
        for fault in FaultPlan.random(seed=seed, kinds=("node_flap",)).faults:
            assert fault.factor == int(fault.factor) >= 1


def test_shrink_handles_cluster_kinds():
    plan = plan_of(
        FaultSpec(kind="node_crash", at_s=10.0, duration_s=4.0, node=0),
        FaultSpec(kind="network_partition", at_s=20.0, duration_s=4.0, node=1),
    )
    shrunk = shrink_failing(
        plan,
        lambda candidate: any(f.kind == "node_crash" for f in candidate.faults),
    )
    assert len(shrunk.faults) == 1
    assert shrunk.faults[0].kind == "node_crash"
