"""Unit tests for generator processes and signals."""

import pytest

from repro.errors import SimulationError
from repro.sim import Signal, Simulator, spawn


def test_process_sleeps_for_yielded_delays():
    sim = Simulator()
    log = []

    def actor():
        yield 1.5
        log.append(sim.now)
        yield 0.5
        log.append(sim.now)

    spawn(sim, actor())
    sim.run()
    assert log == [1.5, 2.0]


def test_spawn_with_delay():
    sim = Simulator()
    log = []

    def actor():
        log.append(sim.now)
        yield 1.0
        log.append(sim.now)

    spawn(sim, actor(), delay=3.0)
    sim.run()
    assert log == [3.0, 4.0]


def test_process_result_and_done_signal():
    sim = Simulator()

    def worker():
        yield 1.0
        return 42

    process = spawn(sim, worker())
    results = []
    process.done.add_waiter(results.append)
    sim.run()
    assert process.finished
    assert process.result == 42
    assert results == [42]


def test_signal_wakes_waiting_process_with_value():
    sim = Simulator()
    signal = Signal("data")
    log = []

    def consumer():
        value = yield signal
        log.append((sim.now, value))

    spawn(sim, consumer())
    sim.schedule(2.0, signal.fire, "payload")
    sim.run()
    assert log == [(2.0, "payload")]


def test_signal_fires_many_times_waiters_cleared_each_time():
    sim = Simulator()
    signal = Signal()
    hits = []
    signal.add_waiter(lambda v: hits.append(v))
    signal.fire(1)
    signal.fire(2)  # no waiters left
    assert hits == [1]
    assert signal.fire_count == 2


def test_process_can_wait_on_another_process():
    sim = Simulator()
    log = []

    def worker():
        yield 2.0
        return "done"

    def waiter(target):
        value = yield target
        log.append((sim.now, value))

    target = spawn(sim, worker())
    spawn(sim, waiter(target))
    sim.run()
    assert log == [(2.0, "done")]


def test_waiting_on_finished_process_resumes_immediately():
    sim = Simulator()
    log = []

    def worker():
        yield 1.0
        return 7

    def late_waiter(target):
        yield 5.0
        value = yield target
        log.append((sim.now, value))

    target = spawn(sim, worker())
    spawn(sim, late_waiter(target))
    sim.run()
    assert log == [(5.0, 7)]


def test_negative_yield_raises():
    sim = Simulator()

    def bad():
        yield -1.0

    spawn(sim, bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_unsupported_yield_raises():
    sim = Simulator()

    def bad():
        yield "nope"

    spawn(sim, bad())
    with pytest.raises(SimulationError):
        sim.run()
