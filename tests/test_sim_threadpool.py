"""Unit tests for simulated thread pools."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    JobPhase,
    ProcessorSharingResource,
    SimJob,
    SimThreadPool,
    Simulator,
)


def setup_pool(size=2, capacity=100.0):
    sim = Simulator()
    cpu = ProcessorSharingResource(sim, "cpu", capacity)
    pool = SimThreadPool(sim, "pool", size)
    return sim, cpu, pool


def job(cpu, name, work, on_complete=None, kind="flush"):
    return SimJob(name, kind, [JobPhase(cpu, work, demand=1.0)], on_complete)


def test_pool_caps_concurrency():
    sim, cpu, pool = setup_pool(size=2)
    for i in range(5):
        pool.submit(job(cpu, f"j{i}", work=1.0))
    assert pool.active_count == 2
    assert pool.pending_count == 3
    sim.run()
    assert pool.active_count == 0
    assert len(pool.completed_jobs) == 5


def test_fifo_start_order():
    sim, cpu, pool = setup_pool(size=1)
    starts = []
    pool.observers.append(lambda j, what: starts.append(j.name) if what == "start" else None)
    for i in range(3):
        pool.submit(job(cpu, f"j{i}", work=1.0))
    sim.run()
    assert starts == ["j0", "j1", "j2"]


def test_queue_delay_measured():
    sim, cpu, pool = setup_pool(size=1)
    first = pool.submit(job(cpu, "first", work=2.0))
    second = pool.submit(job(cpu, "second", work=1.0))
    sim.run()
    assert first.queue_delay == pytest.approx(0.0)
    assert second.queue_delay == pytest.approx(2.0)
    assert second.duration == pytest.approx(1.0)


def test_multi_phase_job_charges_both_resources():
    sim = Simulator()
    cpu = ProcessorSharingResource(sim, "cpu", 10.0)
    disk = ProcessorSharingResource(sim, "disk", 100.0)
    pool = SimThreadPool(sim, "pool", 4)
    done = []
    pool.submit(
        SimJob(
            "two-phase",
            "flush",
            [JobPhase(cpu, 1.0, demand=1.0), JobPhase(disk, 50.0, demand=100.0)],
            on_complete=lambda j: done.append(sim.now),
        )
    )
    sim.run()
    assert done == [pytest.approx(1.0 + 0.5)]


def test_slot_held_across_phases():
    sim = Simulator()
    cpu = ProcessorSharingResource(sim, "cpu", 10.0)
    disk = ProcessorSharingResource(sim, "disk", 1.0)
    pool = SimThreadPool(sim, "pool", 1)
    order = []
    pool.observers.append(lambda j, w: order.append((j.name, w)))
    pool.submit(SimJob("a", "x", [JobPhase(cpu, 0.5), JobPhase(disk, 1.0, demand=1.0)]))
    pool.submit(SimJob("b", "x", [JobPhase(cpu, 0.5)]))
    sim.run()
    assert order.index(("a", "end")) < order.index(("b", "start"))


def test_resize_grows_pool_and_starts_pending():
    sim, cpu, pool = setup_pool(size=1)
    for i in range(3):
        pool.submit(job(cpu, f"j{i}", work=10.0))
    assert pool.active_count == 1
    pool.resize(3)
    assert pool.active_count == 3


def test_resize_shrink_does_not_preempt():
    sim, cpu, pool = setup_pool(size=3)
    for i in range(3):
        pool.submit(job(cpu, f"j{i}", work=1.0))
    pool.resize(1)
    assert pool.active_count == 3  # running jobs keep their slots
    sim.run()
    assert len(pool.completed_jobs) == 3


def test_observer_sequence():
    sim, cpu, pool = setup_pool()
    events = []
    pool.observers.append(lambda j, w: events.append(w))
    pool.submit(job(cpu, "j", work=1.0))
    sim.run()
    assert events == ["submitted", "start", "end"]


def test_invalid_configuration_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        SimThreadPool(sim, "p", 0)
    cpu = ProcessorSharingResource(sim, "cpu", 1.0)
    with pytest.raises(SimulationError):
        SimJob("empty", "x", [])
    pool = SimThreadPool(sim, "p", 1)
    with pytest.raises(SimulationError):
        pool.resize(0)


def test_backlog_counts_pending_and_active():
    sim, cpu, pool = setup_pool(size=1)
    for i in range(4):
        pool.submit(job(cpu, f"j{i}", work=1.0))
    assert pool.backlog == 4
    sim.run()
    assert pool.backlog == 0


def test_pause_freezes_starts_and_nests():
    sim, cpu, pool = setup_pool(size=2)
    pool.pause()
    pool.pause()
    pool.submit(job(cpu, "j", work=1.0))
    assert pool.active_count == 0 and pool.pending_count == 1
    pool.resume()
    assert pool.paused  # one pause still outstanding
    pool.resume()
    assert pool.active_count == 1
    with pytest.raises(SimulationError):
        pool.resume()  # unbalanced


def test_restart_clears_pauses_and_forgives_late_resumes():
    sim, cpu, pool = setup_pool(size=1)
    pool.pause()
    pool.pause()
    pool.submit(job(cpu, "stuck", work=1.0))
    assert pool.restart() == 2
    assert not pool.paused
    assert pool.active_count == 1  # queued job started immediately
    assert pool.restarts == [pytest.approx(sim.now)]
    # the fault cleanup's late resumes are absorbed, not an error...
    pool.resume()
    pool.resume()
    assert not pool.paused
    # ...but forgiveness is bounded by what was cleared
    with pytest.raises(SimulationError):
        pool.resume()


def test_restart_emits_trace_instant():
    from repro.trace import Tracer

    sim = Simulator(tracer=Tracer(categories={"pool"}))
    cpu = ProcessorSharingResource(sim, "cpu", 100.0)
    pool = SimThreadPool(sim, "pool", 1)
    pool.pause()
    pool.restart()
    (instant,) = sim.tracer.select(cat="pool", name="restart:pool")
    assert instant.args["cleared"] == 1
