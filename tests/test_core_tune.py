"""Seeded smoke tests for the joint-space auto-tuner (``repro tune``)."""

import json

import pytest

from repro.core import MitigationPlan, TunedConfig, TuneReport, tune
from repro.serialize import roundtrip

#: One policy keeps the smoke grid at 4 runs (baseline, paper, 2 pools)
#: while still exercising the full search/rank/knee/artifact path.
TUNE_ARGS = dict(scenario="baseline_traffic", smoke=True, seed=1,
                 policies=["flush_first"])


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("tune-cache")


@pytest.fixture(scope="module")
def report(cache_dir):
    return tune(cache=True, cache_directory=cache_dir, **TUNE_ARGS)


def test_best_beats_paper_mitigation(report):
    best = report.best
    assert best.policy == "flush_first"
    assert best.p999 < best.paper_p999 < best.baseline_p999
    assert best.improvement_vs_paper > 0.0


def test_rows_cover_the_whole_grid(report):
    labels = [row["label"] for row in report.rows]
    assert labels[:2] == ["baseline", "paper"]
    assert len(labels) == 4  # baseline, paper, flush_first × 2 pools
    assert all(label.startswith("flush_first/") for label in labels[2:])


def test_rerun_is_deterministic_and_cache_hot(report, cache_dir):
    entries_before = sorted(p.name for p in cache_dir.iterdir())
    again = tune(cache=True, cache_directory=cache_dir, **TUNE_ARGS)
    assert again == report
    # every run came from the cache: no new entries appeared
    assert sorted(p.name for p in cache_dir.iterdir()) == entries_before


def test_report_roundtrips_and_plan_revives(report):
    assert roundtrip(report) == report
    assert isinstance(report.best, TunedConfig)
    plan = report.best.plan()
    assert isinstance(plan, MitigationPlan)
    assert plan.compaction_policy == "flush_first"
    assert plan.flush_threads == 16


def test_render_headline_table(report):
    text = report.render()
    assert "baseline" in text and "paper" in text
    assert report.best.label in text
    assert "best: " in text and "vs paper" in text


def test_cli_tune_writes_artifact(cache_dir, tmp_path, monkeypatch, capsys):
    from repro.experiments.cli import main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    out = tmp_path / "tuned.json"
    code = main(["tune", "--smoke", "--policies", "flush_first",
                 "--seed", "1", "--out", str(out)])
    assert code == 0
    artifact = json.loads(out.read_text())
    assert artifact["policy"] == "flush_first"
    assert artifact["p999"] < artifact["paper_p999"]
    assert "best: " in capsys.readouterr().out
    # the CI perf gate passes while the winner beats the paper plan
    monkeypatch.setenv("REPRO_PERF_GATE", "1")
    assert main(["tune", "--smoke", "--policies", "flush_first",
                 "--seed", "1"]) == 0
