"""Full-snapshot checkpoints and validation of the paper's Eq. 1/2."""

import numpy as np
import pytest

from repro.config import CheckpointConfig, ClusterConfig, CostModel
from repro.core import estimate_drain_time
from repro.stream import ConstantSource, StageSpec, StreamJob


def make_job(incremental=True, rate=4000.0, interval=8.0, seed=3):
    return StreamJob(
        stages=[StageSpec("s", parallelism=8, state_entry_bytes=400.0,
                          distinct_keys=8000)],
        source=ConstantSource(rate),
        cluster=ClusterConfig(num_nodes=1, cores_per_node=4),
        checkpoint=CheckpointConfig(interval_s=interval, first_at_s=interval,
                                    incremental=incremental),
        cost=CostModel(cpu_seconds_per_message=0.0002),
        seed=seed,
    )


# ------------------------------------------------------- checkpoint modes

def test_full_snapshot_flushes_entire_state():
    incremental = make_job(incremental=True).run(40.0)
    full = make_job(incremental=False).run(40.0)
    inc_last = incremental.flush_spans()[-1].input_bytes
    full_last = full.flush_spans()[-1].input_bytes
    # after several checkpoints, the full snapshot ships the whole
    # keyed state, several times the per-interval delta
    assert full_last > 2.0 * inc_last


def test_full_snapshots_worsen_the_tail():
    """Why incremental checkpointing is the canonical baseline ([8]):
    full snapshots make every ShadowSync window heavier."""
    incremental = make_job(incremental=True).run(90.0)
    full = make_job(incremental=False).run(90.0)
    inc_tail = incremental.tail_summary(start=20.0)["p999"]
    full_tail = full.tail_summary(start=20.0)["p999"]
    assert full_tail > inc_tail


# ----------------------------------------------------------- Eq. 1 and 2

def test_drain_formula_predicts_simulated_drain():
    """Measure λ, Δt, b and the drain rate from one run and check the
    simulated flush-queue drain-out matches T = λ·b·Δt / C (Eq. 1+2)."""
    job = make_job(rate=14000.0, interval=16.0)  # ~70 % utilization
    result = job.run(40.0)

    # the first checkpoint's flush phase
    flushes = [s for s in result.flush_spans() if s.submit >= 15.9]
    first = [s for s in flushes if s.submit < 17.0]
    phase_start = min(s.start for s in first)
    phase_end = max(s.end for s in first)
    delta_t = phase_end - phase_start

    # measured average blocked fraction during the phase
    grid = np.arange(phase_start, phase_end, 0.005)
    blocked = []
    flow = job.stage("s").flows["node0"]
    seg_times = [s.time for s in flow.segments]
    seg_blocked = [s.blocked for s in flow.segments]
    for t in grid:
        idx = np.searchsorted(seg_times, t, side="right") - 1
        blocked.append(seg_blocked[max(idx, 0)])
    b = float(np.mean(blocked))

    lam = 14000.0
    # drain capacity: the flow can use all 4 cores when backlogged
    drain_rate = 4.0 / job.cost.cpu_seconds_per_message - lam
    predicted = estimate_drain_time(lam, delta_t, drain_rate, b)

    # measured: time from phase end until the queue returns to ~empty
    times, queue = result.queue_series("s", phase_end, phase_end + 10.0,
                                       dt=0.01)
    nonempty = queue > 50.0
    measured = float(times[nonempty][-1] - phase_end) if nonempty.any() else 0.0

    assert predicted > 0
    assert measured == pytest.approx(predicted, rel=0.5, abs=0.1)


def test_eq1_queue_build_matches_lambda_delta_t():
    """Eq. 1: Q = λ · b · Δt — peak backlog during a flush phase."""
    job = make_job(rate=14000.0, interval=16.0)
    result = job.run(40.0)
    times, queue = result.queue_series("s", 15.9, 20.0, dt=0.005)
    peak = float(queue.max())

    flushes = [s for s in result.flush_spans() if 15.9 <= s.submit < 17.0]
    phase = max(s.end for s in flushes) - min(s.start for s in flushes)
    # blocked fraction averages ~0.5-1.0 over the phase (8 instances,
    # 8+ flush threads -> all blocked at once initially)
    upper = 14000.0 * 1.0 * phase * 1.5
    lower = 14000.0 * 0.3 * phase * 0.5
    assert lower <= peak <= upper