"""Tests for the content-addressed experiment result cache."""

import dataclasses
import json

import pytest

import repro.experiments.parallel as parallel_mod
from repro.experiments.parallel import (
    CACHE_ENV,
    RunSpec,
    cache_enabled,
    cache_load,
    cache_store,
    clear_cache,
    run_grid,
    spec_cache_key,
)
from repro.experiments.runner import ExperimentSettings
from repro.faults import FaultPlan, FaultSpec

SHORT = ExperimentSettings(duration_s=25.0, warmup_s=8.0, seed=11)

CRASH_PLAN = FaultPlan(
    name="cache-crash",
    faults=(
        FaultSpec(kind="worker_crash", at_s=12.0, duration_s=2.0, node=0),
        FaultSpec(kind="slow_disk", at_s=18.0, duration_s=3.0, node=1,
                  factor=0.25),
    ),
)


def canonical(summary):
    return json.dumps(summary.to_dict(), sort_keys=True)


@pytest.fixture()
def cache_root(tmp_path):
    return tmp_path / "cache"


def test_hit_on_identical_spec(cache_root, monkeypatch):
    spec = RunSpec(settings=SHORT)
    first = run_grid([spec], cache_directory=cache_root)
    assert len(list(cache_root.glob("*.json"))) == 1

    # A cache hit must never re-run the simulation.
    def boom(_spec):
        raise AssertionError("cache miss: simulation re-executed")

    monkeypatch.setattr(parallel_mod, "execute_spec", boom)
    second = run_grid([spec], cache_directory=cache_root)
    assert second[0].to_dict() == first[0].to_dict()


def test_miss_on_changed_seed(cache_root):
    spec = RunSpec(settings=SHORT)
    assert spec_cache_key(spec) != spec_cache_key(spec.with_seed(99))


def test_miss_on_changed_config(cache_root):
    base = RunSpec(settings=SHORT)
    assert spec_cache_key(base) != spec_cache_key(
        dataclasses.replace(base, interval_s=16.0)
    )
    assert spec_cache_key(base) != spec_cache_key(
        dataclasses.replace(base, storage="nvme")
    )
    longer = dataclasses.replace(
        base, settings=dataclasses.replace(SHORT, duration_s=50.0)
    )
    assert spec_cache_key(base) != spec_cache_key(longer)


def test_miss_on_package_version_change(cache_root, monkeypatch):
    spec = RunSpec(settings=SHORT)
    key_now = spec_cache_key(spec)
    monkeypatch.setattr(parallel_mod, "_PACKAGE_VERSION", "999.0.0")
    assert spec_cache_key(spec) != key_now


def test_stale_version_entry_not_served(cache_root, monkeypatch):
    spec = RunSpec(settings=SHORT)
    run_grid([spec], cache_directory=cache_root)
    monkeypatch.setattr(parallel_mod, "_PACKAGE_VERSION", "999.0.0")
    assert cache_load(spec, cache_root) is None


def test_env_off_bypasses_cache(cache_root, monkeypatch):
    monkeypatch.setenv(CACHE_ENV, "off")
    assert not cache_enabled()
    run_grid([RunSpec(settings=SHORT)], cache_directory=cache_root)
    assert not list(cache_root.glob("*.json"))


def test_cache_false_argument_bypasses_cache(cache_root):
    run_grid([RunSpec(settings=SHORT)], cache=False, cache_directory=cache_root)
    assert not list(cache_root.glob("*.json"))


def test_corrupt_entry_falls_back_to_running(cache_root):
    spec = RunSpec(settings=SHORT)
    first = run_grid([spec], cache_directory=cache_root)
    entry = next(cache_root.glob("*.json"))
    entry.write_text("{not json")
    again = run_grid([spec], cache_directory=cache_root)
    assert again[0].to_dict() == first[0].to_dict()


def test_store_and_load_roundtrip(cache_root):
    spec = RunSpec(settings=SHORT)
    summary = run_grid([spec], cache=False)[0]
    path = cache_store(spec, summary, cache_root)
    assert path.name == f"{spec_cache_key(spec)}.json"
    loaded = cache_load(spec, cache_root)
    assert loaded is not None
    assert loaded.to_dict() == summary.to_dict()


def test_clear_cache(cache_root):
    run_grid([RunSpec(settings=SHORT)], cache_directory=cache_root)
    assert clear_cache(cache_root) == 1
    assert not list(cache_root.glob("*.json"))


# ----------------------------------------------------------------------
# fault plans participate in the cache key and stay deterministic
# ----------------------------------------------------------------------


def test_fault_plan_changes_the_cache_key():
    clean = RunSpec(settings=SHORT)
    faulted = dataclasses.replace(clean, faults=CRASH_PLAN)
    other = dataclasses.replace(
        clean,
        faults=FaultPlan(name="other", faults=(
            FaultSpec(kind="flush_stall", at_s=12.0, duration_s=2.0, node=0),
        )),
    )
    keys = {spec_cache_key(clean), spec_cache_key(faulted),
            spec_cache_key(other)}
    assert len(keys) == 3


def test_fault_spec_accepts_plan_as_dict():
    spec = RunSpec(settings=SHORT, faults=CRASH_PLAN.to_dict())
    assert spec.faults == CRASH_PLAN
    assert spec_cache_key(spec) == spec_cache_key(
        RunSpec(settings=SHORT, faults=CRASH_PLAN)
    )


def test_faulted_run_is_byte_identical_across_reruns(cache_root):
    spec = RunSpec(settings=SHORT, faults=CRASH_PLAN, label="determinism")
    first = run_grid([spec], cache=False)[0]
    second = run_grid([spec], cache=False)[0]
    assert canonical(first) == canonical(second)
    assert first.fault_events
    assert first.fault_plan["name"] == "cache-crash"


def test_faulted_run_round_trips_through_the_cache(cache_root, monkeypatch):
    spec = RunSpec(settings=SHORT, faults=CRASH_PLAN)
    fresh = run_grid([spec], cache_directory=cache_root)[0]

    def boom(_spec):
        raise AssertionError("cache miss: simulation re-executed")

    monkeypatch.setattr(parallel_mod, "execute_spec", boom)
    cached = run_grid([spec], cache_directory=cache_root)[0]
    assert canonical(cached) == canonical(fresh)


@pytest.mark.slow
def test_faulted_run_identical_serial_and_parallel(cache_root):
    spec = RunSpec(settings=SHORT, faults=CRASH_PLAN)
    serial = run_grid([spec, spec.with_seed(12)], cache=False, jobs=1)
    parallel = run_grid([spec, spec.with_seed(12)], cache=False, jobs=2)
    assert [canonical(s) for s in serial] == [canonical(s) for s in parallel]
