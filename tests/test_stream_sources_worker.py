"""Unit tests for sources and worker nodes."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import Simulator
from repro.storage import NVME_SSD, TMPFS
from repro.stream import ConstantSource, PiecewiseSource, WorkerNode


# ---------------------------------------------------------------- sources

def test_constant_source_sets_rate_once():
    sim = Simulator()
    rates = []
    ConstantSource(5000.0).start(sim, rates.append)
    sim.run()
    assert rates == [5000.0]
    assert ConstantSource(5000.0).steady_rate() == 5000.0


def test_constant_source_rejects_negative():
    with pytest.raises(ConfigurationError):
        ConstantSource(-1.0)


def test_piecewise_source_schedule():
    sim = Simulator()
    seen = []
    source = PiecewiseSource([(0.0, 1000.0), (5.0, 2000.0), (10.0, 1500.0)])
    source.start(sim, lambda rate: seen.append((sim.now, rate)))
    sim.run()
    assert seen == [(0.0, 1000.0), (5.0, 2000.0), (10.0, 1500.0)]
    assert source.steady_rate() == 1500.0


def test_piecewise_source_validation():
    with pytest.raises(ConfigurationError):
        PiecewiseSource([])
    with pytest.raises(ConfigurationError):
        PiecewiseSource([(5.0, 1.0), (0.0, 2.0)])  # not ascending
    with pytest.raises(ConfigurationError):
        PiecewiseSource([(0.0, -1.0)])


def test_piecewise_ramp_models_initialization_phase():
    """§3.3: a heavy init phase then steady state."""
    source = PiecewiseSource([(0.0, 100000.0), (30.0, 60000.0)])
    assert source.steady_rate() == 60000.0


# ---------------------------------------------------------------- worker

def test_worker_node_bundles_resources():
    sim = Simulator()
    node = WorkerNode(sim, "node0", cores=16, storage=TMPFS,
                      flush_threads=16, compaction_threads=4)
    assert node.cpu.capacity == 16.0
    assert node.device.capacity == TMPFS.device_capacity
    assert node.flush_pool.size == 16
    assert node.compaction_pool.size == 4
    assert node.flush_threads == 16
    assert node.compaction_threads == 4


def test_worker_node_device_follows_storage_profile():
    sim = Simulator()
    node = WorkerNode(sim, "n", cores=4, storage=NVME_SSD,
                      flush_threads=1, compaction_threads=1)
    assert node.device.capacity == NVME_SSD.write_bandwidth_mb_s
    assert "nvme" in node.device.name


def test_worker_hosts_instances():
    sim = Simulator()
    node = WorkerNode(sim, "n", cores=4, storage=TMPFS,
                      flush_threads=1, compaction_threads=1)
    node.host(object())
    node.host(object())
    assert len(node.instances) == 2
