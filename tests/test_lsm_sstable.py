"""Unit tests for SSTables and the k-way merge."""

import pytest

from repro.errors import LSMError
from repro.lsm import SSTable, TOMBSTONE, merge_tables


def make_table(pairs, level=0, logical=None):
    entries = sorted(pairs.items())
    if logical is None:
        logical = sum(len(k) + len(v) for k, v in entries if v is not TOMBSTONE)
    return SSTable(entries, logical_bytes=logical, level=level)


def test_get_with_binary_search():
    table = make_table({b"a": b"1", b"m": b"2", b"z": b"3"})
    assert table.get(b"m") == b"2"
    assert table.get(b"q") is None
    assert b"z" in table and b"x" not in table


def test_entries_must_be_strictly_sorted():
    with pytest.raises(LSMError):
        SSTable([(b"b", b"1"), (b"a", b"2")], logical_bytes=0)
    with pytest.raises(LSMError):
        SSTable([(b"a", b"1"), (b"a", b"2")], logical_bytes=0)


def test_min_max_keys_and_overlap():
    left = make_table({b"a": b"", b"f": b""})
    right = make_table({b"g": b"", b"k": b""})
    touching = make_table({b"f": b"", b"h": b""})
    assert left.min_key == b"a" and left.max_key == b"f"
    assert not left.key_range_overlaps(right)
    assert left.key_range_overlaps(touching)
    assert touching.key_range_overlaps(right)


def test_empty_table_overlaps_nothing():
    empty = SSTable([], logical_bytes=100)
    other = make_table({b"a": b""})
    assert not empty.key_range_overlaps(other)
    assert not other.key_range_overlaps(empty)
    assert empty.min_key is None


def test_scan_bounds():
    table = make_table({f"k{i}".encode(): b"v" for i in range(10)})
    assert [k for k, _ in table.scan(b"k2", b"k5")] == [b"k2", b"k3", b"k4"]


def test_merge_newest_wins():
    newer = make_table({b"k": b"new", b"only-new": b"x"})
    older = make_table({b"k": b"old", b"only-old": b"y"})
    merged = merge_tables([newer, older], drop_tombstones=False, level=1)
    assert merged.get(b"k") == b"new"
    assert merged.get(b"only-new") == b"x"
    assert merged.get(b"only-old") == b"y"
    assert merged.level == 1


def test_merge_keeps_tombstones_above_bottom_level():
    newer = make_table({b"k": TOMBSTONE})
    older = make_table({b"k": b"old"})
    merged = merge_tables([newer, older], drop_tombstones=False, level=1)
    assert merged.get(b"k") is TOMBSTONE


def test_merge_drops_tombstones_at_bottom_level():
    newer = make_table({b"k": TOMBSTONE, b"live": b"v"})
    older = make_table({b"k": b"old"})
    merged = merge_tables([newer, older], drop_tombstones=True, level=6)
    assert merged.get(b"k") is None
    assert merged.get(b"live") == b"v"


def test_merge_requires_input():
    with pytest.raises(LSMError):
        merge_tables([], drop_tombstones=False, level=1)


def test_merge_logical_bytes_shrink_with_dedup():
    a = make_table({b"k1": b"v", b"k2": b"v"}, logical=1000)
    b = make_table({b"k1": b"v", b"k2": b"v"}, logical=1000)
    merged = merge_tables([a, b], drop_tombstones=False, level=1)
    # 4 physical in, 2 out -> half the logical volume survives
    assert merged.logical_bytes == 1000


def test_merge_of_accounting_only_tables_keeps_logical_bytes():
    a = SSTable([], logical_bytes=700, level=0)
    b = SSTable([], logical_bytes=300, level=0)
    merged = merge_tables([a, b], drop_tombstones=False, level=1)
    assert merged.logical_bytes == 1000


def test_table_ids_unique():
    a = SSTable([], logical_bytes=0)
    b = SSTable([], logical_bytes=0)
    assert a.table_id != b.table_id
