"""Unit tests for the level manager and compaction picking."""

import pytest

from repro.errors import LSMError
from repro.lsm import LSMOptions, LevelManager, MiB, SSTable


def options(trigger=4, base=16 * MiB):
    return LSMOptions(l0_compaction_trigger=trigger, max_bytes_for_level_base=base)


def l0_table(pairs=None, logical=1000):
    entries = sorted((pairs or {}).items())
    return SSTable(entries, logical_bytes=logical, level=0)


def test_add_l0_newest_first():
    levels = LevelManager(options())
    first = l0_table()
    second = l0_table()
    levels.add_l0(first)
    levels.add_l0(second)
    assert levels.level(0) == [second, first]
    assert levels.l0_file_count == 2


def test_add_l0_rejects_wrong_level():
    levels = LevelManager(options())
    wrong = SSTable([], logical_bytes=0, level=1)
    with pytest.raises(LSMError):
        levels.add_l0(wrong)


def test_no_compaction_below_trigger():
    levels = LevelManager(options(trigger=4))
    for _ in range(3):
        levels.add_l0(l0_table())
    assert not levels.needs_l0_compaction()
    assert levels.pick_compaction() is None


def test_l0_trigger_picks_all_idle_files():
    levels = LevelManager(options(trigger=4))
    for _ in range(5):
        levels.add_l0(l0_table())
    pick = levels.pick_compaction()
    assert pick is not None
    assert pick.source_level == 0 and pick.target_level == 1
    assert len(pick.inputs) == 5
    assert pick.reason == "l0-trigger"


def test_pick_reserves_inputs_until_applied():
    levels = LevelManager(options(trigger=2))
    for _ in range(2):
        levels.add_l0(l0_table())
    first = levels.pick_compaction()
    assert first is not None
    assert levels.pick_compaction() is None  # inputs reserved
    levels.abandon_compaction(first)
    assert levels.pick_compaction() is not None  # released again


def test_l0_pick_includes_overlapping_l1_runs():
    levels = LevelManager(options(trigger=2))
    resident = SSTable([(b"a", b"1"), (b"m", b"2")], logical_bytes=100, level=1)
    levels._levels[1].append(resident)
    levels.add_l0(l0_table({b"b": b"x"}))
    levels.add_l0(l0_table({b"c": b"y"}))
    pick = levels.pick_compaction()
    assert resident in pick.inputs


def test_apply_compaction_replaces_inputs():
    levels = LevelManager(options(trigger=2))
    for _ in range(2):
        levels.add_l0(l0_table(logical=500))
    pick = levels.pick_compaction()
    output = SSTable([], logical_bytes=1000, level=1)
    levels.apply_compaction(pick, output)
    assert levels.l0_file_count == 0
    assert levels.level(1) == [output]
    assert levels.level_bytes(1) == 1000


def test_apply_compaction_validates_target_level():
    levels = LevelManager(options(trigger=2))
    for _ in range(2):
        levels.add_l0(l0_table())
    pick = levels.pick_compaction()
    wrong = SSTable([], logical_bytes=0, level=3)
    with pytest.raises(LSMError):
        levels.apply_compaction(pick, wrong)


def test_overflow_pick_on_oversized_level():
    opts = options(trigger=4, base=1000)  # L1 limit = 1000 bytes
    levels = LevelManager(opts)
    big = SSTable([(b"a", b"v")], logical_bytes=5000, level=1)
    levels._levels[1].append(big)
    pick = levels.pick_compaction()
    assert pick is not None
    assert pick.reason == "size-overflow"
    assert pick.source_level == 1 and pick.target_level == 2
    assert big in pick.inputs


def test_overflow_merges_overlapping_next_level_run():
    opts = options(base=1000)
    levels = LevelManager(opts)
    seed = SSTable([(b"c", b"v")], logical_bytes=5000, level=1)
    below = SSTable([(b"a", b"v"), (b"z", b"v")], logical_bytes=100, level=2)
    levels._levels[1].append(seed)
    levels._levels[2].append(below)
    pick = levels.pick_compaction()
    assert set(pick.inputs) == {seed, below}


def test_invariants_pass_on_valid_structure():
    levels = LevelManager(options())
    levels._levels[1] = [
        SSTable([(b"a", b"v"), (b"c", b"v")], logical_bytes=0, level=1),
        SSTable([(b"d", b"v"), (b"f", b"v")], logical_bytes=0, level=1),
    ]
    levels.check_invariants()


def test_invariants_catch_overlapping_l1_runs():
    levels = LevelManager(options())
    levels._levels[1] = [
        SSTable([(b"a", b"v"), (b"m", b"v")], logical_bytes=0, level=1),
        SSTable([(b"c", b"v"), (b"z", b"v")], logical_bytes=0, level=1),
    ]
    with pytest.raises(LSMError):
        levels.check_invariants()


def test_invariants_catch_mislabelled_level():
    levels = LevelManager(options())
    levels._levels[2] = [SSTable([], logical_bytes=0, level=1)]
    with pytest.raises(LSMError):
        levels.check_invariants()


def test_total_bytes_sums_levels():
    levels = LevelManager(options())
    levels.add_l0(l0_table(logical=100))
    levels._levels[1].append(SSTable([], logical_bytes=400, level=1))
    assert levels.total_bytes() == 500


def test_max_bytes_for_level_progression():
    opts = LSMOptions(max_bytes_for_level_base=100, level_size_multiplier=10)
    assert opts.max_bytes_for_level(1) == 100
    assert opts.max_bytes_for_level(3) == 10000
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        opts.max_bytes_for_level(0)
