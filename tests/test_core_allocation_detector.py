"""Unit tests for allocation recommendations and the ShadowSync detector."""

import numpy as np
import pytest

from repro.core import (
    ShadowSyncDetector,
    concurrency_latency_curve,
    recommend_compaction_threads,
    recommend_flush_threads,
)
from repro.errors import AnalysisError
from repro.metrics import ActivitySpan, SpanLog, StepSeries


# ---------------------------------------------------------------- allocation

def test_flush_threads_equal_cores():
    assert recommend_flush_threads(16) == 16
    assert recommend_flush_threads(8) == 8
    with pytest.raises(AnalysisError):
        recommend_flush_threads(0)


def test_concurrency_latency_curve_bins_windows():
    window_times = np.arange(0.0, 10.0, 0.05)
    concurrency = np.repeat(np.arange(10), 20)[: len(window_times)]
    latency = 0.3 + 0.05 * concurrency
    levels, means = concurrency_latency_curve(
        window_times, latency, window_times, concurrency.astype(float)
    )
    assert list(levels) == list(range(10))
    assert means[3] == pytest.approx(0.3 + 0.15)


def test_curve_needs_enough_levels():
    t = np.arange(0.0, 1.0, 0.05)
    with pytest.raises(AnalysisError):
        concurrency_latency_curve(t, np.ones_like(t), t, np.zeros_like(t))


def test_recommend_threads_finds_headroom_knee():
    """Flat latency up to the headroom, rising fast beyond — the knee
    is the recommended allocation (Figure 15's shape)."""
    levels = np.arange(0.0, 17.0)
    latency = np.where(levels <= 4, 0.4 + 0.005 * levels,
                       0.4 + 0.3 * (levels - 4))
    assert recommend_compaction_threads(levels, latency) in (4, 5)


def test_recommend_threads_fallback_on_flat_curve():
    levels = np.arange(0.0, 8.0)
    latency = np.full_like(levels, 0.4)
    assert recommend_compaction_threads(levels, latency, fallback=4) == 4


# ---------------------------------------------------------------- detector

def build_shadowsync_scene():
    """Synthetic run: 2 spikes, both during CPU saturation windows that
    coincide with flush+compaction overlap."""
    spans = SpanLog()
    for burst_start in (32.0, 64.0):
        for i in range(8):
            spans.add(ActivitySpan("flush", f"f{i}", "s0", i, "n0",
                                   burst_start, burst_start + 0.4))
            spans.add(ActivitySpan("compaction", f"c{i}", "s0", i, "n0",
                                   burst_start + 0.1, burst_start + 2.5))
            spans.add(ActivitySpan("compaction", f"c{i}b", "s1", i, "n0",
                                   burst_start + 0.1, burst_start + 2.5))
    cpu_points = [(0.0, 10.0)]
    for burst_start in (32.0, 64.0):
        cpu_points += [(burst_start, 16.0), (burst_start + 2.5, 10.0)]
    cpu = StepSeries(cpu_points)
    times = np.arange(0.0, 96.0, 0.25)
    latency = np.full_like(times, 0.3)
    for burst_start in (32.0, 64.0):
        latency[(times >= burst_start) & (times < burst_start + 3.0)] = 2.0
    return spans, cpu, times, latency


def test_detector_classifies_statistical_shadowsync():
    spans, cpu, times, latency = build_shadowsync_scene()
    detector = ShadowSyncDetector(spike_threshold_s=1.0)
    finding = detector.analyze(
        spans=spans, cpu_series=cpu, cpu_capacity=16.0,
        latency_times=times, latency_values=latency,
        checkpoint_times=[8.0 * k for k in range(12)],
        stages=["s0", "s1"], window=(0.0, 96.0),
    )
    assert finding.classification == "statistical"
    assert len(finding.spikes) == 2
    assert finding.spike_match_fraction == 1.0
    assert finding.overlap_seconds > 0
    assert finding.spike_period_s == pytest.approx(32.0, abs=1.0)


def test_detector_reports_none_without_spikes():
    spans, cpu, times, _latency = build_shadowsync_scene()
    flat = np.full_like(times, 0.3)
    detector = ShadowSyncDetector(spike_threshold_s=1.0)
    finding = detector.analyze(
        spans=spans, cpu_series=cpu, cpu_capacity=16.0,
        latency_times=times, latency_values=flat,
        checkpoint_times=[8.0 * k for k in range(12)],
        stages=["s0", "s1"], window=(0.0, 96.0),
    )
    assert finding.classification == "none"


def test_detector_scheduled_when_stages_alternate():
    spans = SpanLog()
    # s0 bursts at 32, s1 bursts at 64 — alternating periods
    for i in range(8):
        spans.add(ActivitySpan("flush", f"f{i}", "s0", i, "n0", 32.0, 32.4))
        spans.add(ActivitySpan("compaction", f"c{i}", "s0", i, "n0", 32.1, 34.5))
        spans.add(ActivitySpan("flush", f"g{i}", "s1", i, "n0", 64.0, 64.4))
        spans.add(ActivitySpan("compaction", f"d{i}", "s1", i, "n0", 64.1, 66.5))
    cpu = StepSeries([(0.0, 10.0), (32.0, 16.0), (34.5, 10.0),
                      (64.0, 16.0), (66.5, 10.0)])
    times = np.arange(0.0, 96.0, 0.25)
    latency = np.full_like(times, 0.3)
    for start in (32.0, 64.0):
        latency[(times >= start) & (times < start + 3.0)] = 1.8
    detector = ShadowSyncDetector(spike_threshold_s=1.0)
    finding = detector.analyze(
        spans=spans, cpu_series=cpu, cpu_capacity=16.0,
        latency_times=times, latency_values=latency,
        checkpoint_times=[8.0 * k for k in range(12)],
        stages=["s0", "s1"], window=(0.0, 96.0),
    )
    assert finding.classification == "scheduled"


def test_detector_empty_window_raises():
    spans, cpu, times, latency = build_shadowsync_scene()
    detector = ShadowSyncDetector()
    with pytest.raises(AnalysisError):
        detector.analyze(spans, cpu, 16.0, times, latency, [], ["s0"], (5.0, 5.0))
