"""Sharded execution: planning, slicing, merging and determinism."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ExperimentSettings
from repro.experiments.parallel import RunSpec
from repro.experiments.shard import (
    ShardPlan,
    execute_spec_sharded,
    merge_summaries,
    plan_shards,
    shard_seed,
)
from repro.experiments.summary import RunSummary
from repro.stream.stage import StageSpec

SETTINGS = ExperimentSettings(duration_s=20.0, warmup_s=6.0, seed=3)


# ---------------------------------------------------------------------------
# planning & validation
# ---------------------------------------------------------------------------

def test_shard_plan_validates_counts():
    with pytest.raises(ConfigurationError):
        ShardPlan(shards=0)
    with pytest.raises(ConfigurationError):
        ShardPlan(shards=2, barrier_s=0.0)
    plan = ShardPlan(shards=2, barrier_s=4.0)
    assert plan.resolve_barrier(8.0) == 4.0
    assert ShardPlan(shards=2).resolve_barrier(8.0) == 8.0


def test_plan_shards_accepts_even_splits():
    spec = RunSpec(settings=SETTINGS)
    for shards in (1, 2, 4):
        assert plan_shards(spec, shards).shards == shards
    wc = RunSpec(kind="wordcount", settings=SETTINGS)
    for shards in (1, 2, 4, 8, 16):
        assert plan_shards(wc, shards).shards == shards


def test_plan_shards_rejects_uneven_splits():
    with pytest.raises(ConfigurationError):
        plan_shards(RunSpec(settings=SETTINGS), 3)
    with pytest.raises(ConfigurationError):
        plan_shards(RunSpec(kind="wordcount", settings=SETTINGS), 5)


def test_shard_seeds_are_distinct_per_shard():
    seeds = [shard_seed(1, i) for i in range(8)]
    assert len(set(seeds)) == 8
    assert shard_seed(1, 0) == 1  # shard 0 of a run keeps the run's seed


# ---------------------------------------------------------------------------
# stage slicing
# ---------------------------------------------------------------------------

def test_stage_scaled_divides_parallelism_and_keys():
    spec = StageSpec("map", parallelism=64, distinct_keys=60_000)
    half = spec.scaled(2)
    assert half.parallelism == 32
    assert half.distinct_keys == 30_000
    # Per-instance key share (memtable saturation point) is preserved.
    assert half.distinct_keys_per_instance == spec.distinct_keys_per_instance


def test_stage_scaled_replicates_singletons():
    spec = StageSpec("rank", parallelism=1, distinct_keys=10_000)
    sliced = spec.scaled(4)
    assert sliced.parallelism == 1
    assert sliced.distinct_keys == 2_500


def test_stage_scaled_identity_and_errors():
    spec = StageSpec("map", parallelism=6, distinct_keys=600)
    assert spec.scaled(1) is spec
    with pytest.raises(ConfigurationError):
        spec.scaled(4)  # 6 % 4 != 0


# ---------------------------------------------------------------------------
# merging
# ---------------------------------------------------------------------------

def _part(label, p50, p999, times, p999_series, flush, activities):
    return RunSummary(
        kind="traffic",
        label=label,
        seed=3,
        duration_s=20.0,
        warmup_s=6.0,
        tails={"p50": p50, "p95": p999 / 2, "p99": p999 / 1.5,
               "p999": p999, "max": p999 * 1.2},
        coarse_times=list(times),
        coarse_p999=list(p999_series),
        fine_times=list(times),
        fine_p999=list(p999_series),
        concurrency_times=list(times),
        flush_concurrency=list(flush),
        compaction_concurrency=list(flush),
        checkpoint_times=[8.0, 16.0],
        checkpoint_stats=[{"checkpoint": 1, "part": label}],
        per_checkpoint_compactions={1: {"s0": 2}},
        activities=dict(activities),
    )


def test_merge_summaries_policy():
    a = _part("a", p50=0.10, p999=1.0, times=[1.0, 2.0],
              p999_series=[0.5, 1.0], flush=[1, 2],
              activities={"flush": 4, "compaction": 1})
    b = _part("b", p50=0.20, p999=2.0, times=[2.0, 3.0],
              p999_series=[1.5, 0.2], flush=[3, 4],
              activities={"flush": 6})
    merged = merge_summaries([a, b], label="run", shards=2)

    # Conservative run-level tails: worst shard except p50 (shard mean).
    assert merged.tails["p999"] == 2.0
    assert merged.tails["max"] == pytest.approx(2.4)
    assert merged.tails["p50"] == pytest.approx(0.15)
    # Tail timelines merge on the union grid, worst shard per window.
    assert merged.coarse_times == [1.0, 2.0, 3.0]
    assert merged.coarse_p999 == [0.5, 1.5, 0.2]
    # Extensive quantities sum across the partitioned cluster.
    assert merged.concurrency_times == [1.0, 2.0, 3.0]
    assert merged.flush_concurrency == [1, 5, 4]
    assert merged.activities == {"flush": 10, "compaction": 1}
    assert merged.per_checkpoint_compactions == {1: {"s0": 4}}
    # Checkpoint stats concatenate in shard order; label records shards.
    assert [row["part"] for row in merged.checkpoint_stats] == ["a", "b"]
    assert merged.label == "run[shards=2]"


def test_merge_summaries_single_part_passthrough_and_errors():
    a = _part("a", 0.1, 1.0, [1.0], [0.5], [1], {"flush": 1})
    assert merge_summaries([a]) is a
    with pytest.raises(ConfigurationError):
        merge_summaries([])
    with pytest.raises(ConfigurationError):
        merge_summaries([a, None])


# ---------------------------------------------------------------------------
# end-to-end determinism
# ---------------------------------------------------------------------------

def test_sharded_run_is_deterministic():
    spec = RunSpec(settings=SETTINGS, label="det")
    first = execute_spec_sharded(spec, 2)
    second = execute_spec_sharded(spec, 2)
    assert first.merged.to_dict() == second.merged.to_dict()
    assert first.shards == 2 and len(first.parts) == 2
    assert first.merged.label == "det[shards=2]"
    assert [p.label for p in first.parts] == [
        "det[shard 0/2]", "det[shard 1/2]"
    ]
    # Lock-step epochs: duration / checkpoint interval, rounded up.
    assert first.barrier_s == spec.interval_s
    assert first.barriers == 3  # ceil(20 / 8)


def test_sharded_wordcount_runs():
    spec = RunSpec(kind="wordcount", settings=SETTINGS)
    out = execute_spec_sharded(spec, 4)
    assert out.merged.label.endswith("[shards=4]")
    assert out.merged.tails["p999"] == max(
        p.tails["p999"] for p in out.parts
    )


def test_shards_one_matches_unsharded():
    from repro.experiments.parallel import execute_spec

    spec = RunSpec(settings=SETTINGS, label="base")
    plain = execute_spec(spec)
    sharded = execute_spec_sharded(spec, 1)
    assert sharded.merged.to_dict() == plain.to_dict()


def test_run_grid_sharded_labels_and_cache_separation(tmp_path):
    from repro.experiments.parallel import run_grid, spec_cache_key

    spec = RunSpec(settings=SETTINGS, label="grid")
    assert spec_cache_key(spec) != spec_cache_key(spec, shards=2)
    assert spec_cache_key(spec) == spec_cache_key(spec, shards=1)
    [summary] = run_grid([spec], shards=2)
    assert summary.label == "grid[shards=2]"
