"""Unit tests for the resilience primitives: retry, deadline, breaker,
config, the error hierarchy, and the Kafka commit wrapper."""

import random

import pytest

from repro.errors import (
    ConfigurationError,
    OverloadError,
    ReproError,
    ResilienceError,
    RetryExhaustedError,
    WatchdogError,
)
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    ResilienceConfig,
    ResilientKafkaCommitter,
    RetryPolicy,
)
from repro.serialize import roundtrip


# ----------------------------------------------------------------------
# error hierarchy
# ----------------------------------------------------------------------


def test_resilience_errors_are_repro_errors():
    for exc in (OverloadError, RetryExhaustedError, WatchdogError):
        assert issubclass(exc, ResilienceError)
        assert issubclass(exc, ReproError)
    assert not issubclass(ConfigurationError, ResilienceError)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------


def test_retry_delays_grow_and_cap():
    policy = RetryPolicy(max_attempts=6, base_delay_s=0.25, multiplier=2.0,
                         max_delay_s=1.0, jitter=0.0)
    assert [policy.delay_s(n) for n in (1, 2, 3, 4, 5)] == [
        0.25, 0.5, 1.0, 1.0, 1.0
    ]


def test_retry_jitter_is_bounded_and_seeded():
    policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter=0.2)
    delays = [policy.delay_s(1, random.Random(7)) for _ in range(5)]
    assert all(0.8 <= d <= 1.2 for d in delays)
    # same seed, same delay: jitter draws only from the supplied rng
    assert len(set(delays)) == 1
    assert policy.delay_s(1) == 1.0  # no rng -> deterministic midpoint


def test_retry_call_succeeds_after_transient_failures():
    attempts = []
    slept = []
    noted = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise RuntimeError("transient")
        return "ok"

    policy = RetryPolicy(max_attempts=4, base_delay_s=0.1, multiplier=2.0,
                         jitter=0.0)
    result = policy.call(flaky, sleep=slept.append,
                         on_retry=lambda a, d, e: noted.append((a, d)))
    assert result == "ok"
    assert len(attempts) == 3
    assert slept == [pytest.approx(0.1), pytest.approx(0.2)]
    assert noted == [(1, pytest.approx(0.1)), (2, pytest.approx(0.2))]


def test_retry_call_exhaustion_raises_with_cause():
    policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)
    calls = []

    def always_fails():
        calls.append(1)
        raise ValueError("boom")

    with pytest.raises(RetryExhaustedError) as info:
        policy.call(always_fails)
    assert len(calls) == 3
    assert isinstance(info.value.__cause__, ValueError)


def test_retry_validation():
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy().delay_s(0)


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------


def test_deadline_arithmetic():
    deadline = Deadline.after(10.0, 2.5)
    assert deadline.at == 12.5
    assert deadline.remaining(11.0) == pytest.approx(1.5)
    assert not deadline.expired(12.4)
    assert deadline.expired(12.5)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------


def test_breaker_trips_after_consecutive_failures():
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=10.0)
    for t in (1.0, 2.0):
        breaker.record_failure(t)
        assert breaker.state == "closed"
    # a success in between resets the consecutive count
    breaker.record_success(2.5)
    breaker.record_failure(3.0)
    breaker.record_failure(4.0)
    assert breaker.state == "closed"
    breaker.record_failure(5.0)
    assert breaker.state == "open"
    assert breaker.trips == 1
    assert not breaker.allow(6.0)
    assert breaker.rejected == 1


def test_breaker_half_open_probe_closes_on_success():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0)
    breaker.record_failure(0.0)
    assert breaker.state == "open"
    assert breaker.allow(10.0)  # reset timeout elapsed -> half-open probe
    assert breaker.state == "half-open"
    assert not breaker.allow(10.1)  # only one probe admitted
    breaker.record_success(10.5)
    assert breaker.state == "closed"
    assert breaker.allow(10.6)


def test_breaker_half_open_probe_reopens_on_failure():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0)
    breaker.record_failure(0.0)
    assert breaker.allow(10.0)
    breaker.record_failure(10.5)
    assert breaker.state == "open"
    assert breaker.trips == 2
    assert not breaker.allow(15.0)  # reset clock restarted at the re-trip
    assert [s for _t, s in breaker.transitions] == [
        "open", "half-open", "open"
    ]


def test_breaker_validation():
    with pytest.raises(ConfigurationError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ConfigurationError):
        CircuitBreaker(reset_timeout_s=-1.0)


# ----------------------------------------------------------------------
# ResilientKafkaCommitter
# ----------------------------------------------------------------------


def test_committer_retries_then_raises_and_feeds_breaker():
    failures = {"n": 0}

    def commit(*args):
        failures["n"] += 1
        raise RuntimeError("broker unavailable")

    breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=100.0)
    committer = ResilientKafkaCommitter(
        commit, RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0),
        breaker=breaker,
    )
    with pytest.raises(RetryExhaustedError):
        committer.commit("g", "t", 0, 10)
    assert failures["n"] == 2
    assert committer.retries == 1
    assert committer.failures == 1
    # the breaker is now open: the next commit is rejected outright
    with pytest.raises(OverloadError):
        committer.commit("g", "t", 0, 11)
    assert failures["n"] == 2


def test_committer_passes_through_on_success():
    log = []
    committer = ResilientKafkaCommitter(
        lambda *args: log.append(args), RetryPolicy(max_attempts=2)
    )
    committer.commit("g", "t", 1, 42)
    assert log == [("g", "t", 1, 42)]
    assert committer.commits == 1
    assert committer.retries == 0


# ----------------------------------------------------------------------
# ResilienceConfig
# ----------------------------------------------------------------------


def test_config_roundtrips_through_serialize_registry():
    config = ResilienceConfig(latency_slo_s=2.0, shed_rate_factor=0.5)
    assert roundtrip(config) == config
    assert roundtrip(RetryPolicy(max_attempts=5)) == RetryPolicy(max_attempts=5)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ResilienceConfig(latency_slo_s=0.0)
    with pytest.raises(ConfigurationError):
        ResilienceConfig(shed_rate_factor=1.5)
    with pytest.raises(ConfigurationError):
        ResilienceConfig(recovery_factor=0.0)
    with pytest.raises(ConfigurationError):
        ResilienceConfig(compaction_threads_degraded=0)
    with pytest.raises(ConfigurationError):
        ResilienceConfig(retry_jitter=1.0)


def test_config_builds_matching_policy_objects():
    config = ResilienceConfig(retry_attempts=7, retry_base_delay_s=0.5,
                              breaker_failures=5, breaker_reset_s=60.0)
    policy = config.retry_policy()
    assert policy.max_attempts == 7
    assert policy.base_delay_s == 0.5
    breaker = config.circuit_breaker("uploads")
    assert breaker.failure_threshold == 5
    assert breaker.reset_timeout_s == 60.0
    assert breaker.name == "uploads"
