"""Unit tests for records/batches and end-to-end composition sanity."""

import pytest

from repro.config import CheckpointConfig, ClusterConfig, CostModel
from repro.faults.capacity import capacity_dip
from repro.sim.process import spawn
from repro.stream import ConstantSource, Record, RecordBatch, StageSpec, StreamJob


def test_record_batch_accumulates():
    batch = RecordBatch()
    for i in range(3):
        batch.append(Record(f"k{i}".encode(), b"v" * i))
    assert len(batch) == 3
    assert batch.size_bytes == sum(len(f"k{i}") + i for i in range(3))
    assert [r.key for r in batch] == [b"k0", b"k1", b"k2"]


def test_pipeline_outage_is_visible_end_to_end():
    """A full-node pause must appear in the composed two-stage latency
    with roughly the pause duration (plus drain)."""
    job = StreamJob(
        stages=[
            StageSpec("a", parallelism=4, state_entry_bytes=100.0,
                      distinct_keys=4000, selectivity=1.0),
            StageSpec("b", parallelism=4, state_entry_bytes=100.0,
                      distinct_keys=2000),
        ],
        source=ConstantSource(4000.0),
        cluster=ClusterConfig(num_nodes=1, cores_per_node=4),
        checkpoint=CheckpointConfig(interval_s=100.0, first_at_s=100.0),
        cost=CostModel(cpu_seconds_per_message=0.0002,
                       base_latency_seconds=0.0),
        seed=2,
    )
    spawn(job.sim, capacity_dip(job.sim, job.nodes[0].cpu, 0.0, 0.5),
          delay=10.0)
    result = job.run(30.0)
    times, latency, _w = result.end_to_end_latency(start=2.0, end=30.0)
    before = latency[(times > 5.0) & (times < 9.5)]
    at_pause = latency[(times > 9.6) & (times < 10.6)]
    after = latency[(times > 20.0)]
    assert before.max() < 0.1
    assert at_pause.max() == pytest.approx(0.5, abs=0.2)
    assert after.max() < 0.1
