"""Unit tests for LSMOptions validation and trigger policies."""

import pytest

from repro.errors import ConfigurationError
from repro.lsm import LSMOptions


def test_defaults_match_rocksdb():
    opts = LSMOptions()
    assert opts.l0_compaction_trigger == 4
    assert opts.num_levels == 7
    assert opts.max_background_flushes == 16
    assert opts.max_background_compactions == 16


@pytest.mark.parametrize(
    "kwargs",
    [
        {"write_buffer_size": 0},
        {"l0_compaction_trigger": 0},
        {"num_levels": 1},
        {"max_background_flushes": 0},
        {"max_background_compactions": 0},
        {"level_size_multiplier": 1},
        {"l0_slowdown_trigger": 2},  # below compaction trigger
        {"l0_stop_trigger": 5, "l0_slowdown_trigger": 6},
    ],
)
def test_invalid_options_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        LSMOptions(**kwargs)


def test_effective_trigger_uses_policy():
    opts = LSMOptions()
    assert opts.effective_l0_trigger() == 4
    opts.l0_trigger_policy = lambda: 6
    assert opts.effective_l0_trigger() == 6


def test_policy_returning_invalid_trigger_raises():
    opts = LSMOptions()
    opts.l0_trigger_policy = lambda: 0
    with pytest.raises(ConfigurationError):
        opts.effective_l0_trigger()
