"""Tests for the structured tracing subsystem (repro.trace)."""

import json
from pathlib import Path

import pytest

from repro.sim import (
    JobPhase,
    ProcessorSharingResource,
    SimJob,
    SimThreadPool,
    Simulator,
)
from repro.trace import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    TraceEvent,
    Tracer,
    ensure_tracer,
    read_jsonl,
)

GOLDEN = Path(__file__).parent / "data" / "trace_golden.jsonl"


def traced_pool_run():
    """A tiny deterministic traced simulation: 2 pool jobs on one CPU."""
    tracer = Tracer()
    sim = Simulator(seed=7, tracer=tracer)
    cpu = ProcessorSharingResource(sim, "cpu", 4.0)
    pool = SimThreadPool(sim, "node0/flush", 1)
    for i in range(2):
        pool.submit(
            SimJob(
                f"flush-{i}",
                "flush",
                [JobPhase(cpu, 2.0, demand=1.0)],
                metadata={"stage": "s0", "instance": i, "input_bytes": 1000},
            )
        )
    sim.run()
    return tracer


# ----------------------------------------------------------------------
# Tracer basics
# ----------------------------------------------------------------------


def test_complete_instant_counter_events():
    tracer = Tracer()
    tracer.complete("work", "flush", 1.0, 0.5, tid="pool", foo=1)
    tracer.instant("tick", "checkpoint", 2.0, tid="coord")
    tracer.counter("l0", "lsm", 3.0, 4, tid="store")
    assert len(tracer) == 3
    spans = tracer.select(ph="X")
    assert spans[0].name == "work" and spans[0].end == pytest.approx(1.5)
    assert spans[0].args == {"foo": 1}
    assert tracer.select(cat="lsm")[0].args == {"value": 4}


def test_kernel_category_is_opt_in():
    tracer = Tracer()
    assert not tracer.wants("kernel")
    assert tracer.wants("flush")
    opted = Tracer(categories={"kernel", "flush"})
    assert opted.wants("kernel")
    restricted = Tracer(categories={"flush"})
    assert restricted.wants("flush")
    assert not restricted.wants("compaction")
    restricted.instant("x", "compaction", 0.0)
    assert len(restricted) == 0


def test_null_tracer_is_inert_singleton():
    assert isinstance(NULL_TRACER, NullTracer)
    assert not NULL_TRACER.enabled
    NULL_TRACER.complete("a", "flush", 0.0, 1.0)
    NULL_TRACER.instant("b", "flush", 0.0)
    NULL_TRACER.counter("c", "flush", 0.0, 1)
    assert len(NULL_TRACER) == 0
    assert ensure_tracer(None) is NULL_TRACER
    tracer = Tracer()
    assert ensure_tracer(tracer) is tracer


def test_simulator_defaults_to_null_tracer():
    sim = Simulator(seed=0)
    assert sim.tracer is NULL_TRACER


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------


def test_jsonl_round_trip(tmp_path):
    tracer = traced_pool_run()
    assert len(tracer) > 0
    path = tmp_path / "trace.jsonl"
    tracer.write_jsonl(path)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["ph"] == "M"
    assert header["args"]["schema"] == TRACE_SCHEMA_VERSION
    events = read_jsonl(path)
    assert [e.to_dict() for e in events] == [e.to_dict() for e in tracer]


def test_read_jsonl_rejects_unknown_schema(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        json.dumps({"name": "trace", "ph": "M",
                    "args": {"format": "repro.trace", "schema": 999}}) + "\n"
    )
    with pytest.raises(ValueError):
        read_jsonl(path)


def test_chrome_trace_structure(tmp_path):
    tracer = traced_pool_run()
    path = tmp_path / "trace.json"
    tracer.write_chrome(path)
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    assert {e["ph"] for e in events} >= {"X", "M"}
    # integer thread ids plus thread_name metadata naming each track
    named = {e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert "node0/flush" in named
    span = next(e for e in events if e["ph"] == "X")
    assert isinstance(span["tid"], int)
    # timestamps in microseconds
    assert span["dur"] == pytest.approx(2.0 * 1e6)


def test_trace_event_dict_round_trip():
    event = TraceEvent("n", "flush", "X", 1.0, 2.0, "t", {"k": 1})
    assert TraceEvent.from_dict(event.to_dict()).to_dict() == event.to_dict()


# ----------------------------------------------------------------------
# schema stability (golden fixture)
# ----------------------------------------------------------------------


def test_golden_trace_schema_stable(tmp_path):
    """The JSONL byte stream of a fixed run must not drift.

    If this fails because the schema changed deliberately, bump
    TRACE_SCHEMA_VERSION and regenerate the fixture:

        PYTHONPATH=src python tests/make_trace_golden.py
    """
    tracer = traced_pool_run()
    path = tmp_path / "golden.jsonl"
    tracer.write_jsonl(path)
    assert path.read_text() == GOLDEN.read_text()


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def traced_traffic():
    from repro.api import ExperimentSettings, run_traffic

    settings = ExperimentSettings(duration_s=40.0, warmup_s=16.0, trace=True)
    return settings, run_traffic(settings=settings)


def test_traffic_run_produces_span_categories(traced_traffic):
    _, result = traced_traffic
    events = list(result.tracer)
    cats = {(e.cat, e.ph) for e in events}
    assert ("flush", "X") in cats
    assert ("checkpoint", "i") in cats
    assert ("lsm", "C") in cats


def test_tracing_does_not_change_results(traced_traffic):
    """The disabled-tracer acceptance criterion, but stronger: the
    traced and untraced runs must be *identical*, not just within 3%."""
    from repro.api import ExperimentSettings, run_traffic

    settings, traced = traced_traffic
    untraced = run_traffic(
        settings=ExperimentSettings(duration_s=40.0, warmup_s=16.0)
    )
    assert untraced.tail_summary(start=16.0) == traced.tail_summary(start=16.0)


def test_summary_carries_trace_events(traced_traffic):
    from repro.api import RunSummary, summarize_run

    settings, result = traced_traffic
    summary = summarize_run(result, settings)
    assert summary.trace_schema == TRACE_SCHEMA_VERSION
    assert len(summary.trace_events) == len(list(result.tracer))
    # and survives the cache's JSON round trip
    revived = RunSummary.from_dict(json.loads(json.dumps(summary.to_dict())))
    assert revived.trace_events == summary.trace_events


def test_export_trace_adds_derived_tracks(traced_traffic, tmp_path):
    _, result = traced_traffic
    path = tmp_path / "run.jsonl"
    result.export_trace(path)
    events = read_jsonl(path)
    cats = {e.cat for e in events}
    assert "cpu" in cats and "latency" in cats
    with pytest.raises(ValueError):
        result.export_trace(tmp_path / "x", format="protobuf")
