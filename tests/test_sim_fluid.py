"""Unit tests for fluid flows and their CPU interaction."""

import pytest

from repro.errors import SimulationError
from repro.sim import FluidFlow, ProcessorSharingResource, ResourceTask, Simulator


def make_flow(capacity=16.0, wpm=0.0004, max_par=8.0):
    sim = Simulator()
    cpu = ProcessorSharingResource(sim, "node", capacity)
    flow = FluidFlow(sim, "flow", work_per_message=wpm, max_parallelism=max_par)
    cpu.add_flow(flow)
    return sim, cpu, flow


def test_keep_up_demand_matches_arrival_work():
    sim, cpu, flow = make_flow()
    flow.set_arrival_rate(10000.0)  # needs 4 cores
    sim.run_for(5.0)
    assert flow.queue == pytest.approx(0.0)
    assert flow.allocation == pytest.approx(4.0)
    assert flow.serve_rate == pytest.approx(10000.0)


def test_contention_builds_queue_and_drains_after():
    sim, cpu, flow = make_flow(capacity=16.0, max_par=16.0)
    flow.set_arrival_rate(30000.0)  # needs 12 of 16
    sim.run_for(1.0)
    # 16 background tasks of 1 core each for ~1s: flow escalates to 16,
    # total demand 32, flow gets 8 cores = 20000 msg/s -> deficit 10000/s
    for i in range(16):
        cpu.submit(ResourceTask(f"bg{i}", "bg", work=0.5, demand=1.0))
    sim.run_for(0.5)
    assert flow.queue == pytest.approx(10000.0 * 0.5, rel=0.05)
    sim.run_for(5.0)
    assert flow.queue == pytest.approx(0.0, abs=1.0)


def test_blocked_fraction_throttles_service():
    sim, cpu, flow = make_flow(max_par=8.0)
    flow.set_arrival_rate(10000.0)
    sim.run_for(1.0)
    flow.set_blocked_fraction(1.0)  # stop-the-world
    sim.run_for(0.5)
    assert flow.queue == pytest.approx(5000.0, rel=0.01)
    flow.set_blocked_fraction(0.0)
    sim.run_for(5.0)
    assert flow.queue == pytest.approx(0.0, abs=1.0)


def test_queue_empty_event_deescalates_demand():
    sim, cpu, flow = make_flow(capacity=16.0, max_par=16.0)
    flow.set_arrival_rate(20000.0)  # needs 8 cores
    flow.set_blocked_fraction(1.0)
    sim.run_for(0.5)  # builds 10000 messages
    flow.set_blocked_fraction(0.0)
    sim.run_for(10.0)
    # after the backlog drains, allocation returns to keep-up level
    assert flow.queue == pytest.approx(0.0, abs=1.0)
    assert flow.allocation == pytest.approx(8.0, rel=0.01)


def test_segments_record_history():
    sim, cpu, flow = make_flow()
    flow.set_arrival_rate(5000.0)
    sim.run_for(2.0)
    flow.set_arrival_rate(8000.0)
    sim.run_for(2.0)
    flow.finalize(sim.now)
    rates = [s.arrival_rate for s in flow.segments]
    assert 5000.0 in rates and 8000.0 in rates
    assert flow.segments[-1].time == pytest.approx(4.0)


def test_queue_at_interpolates_between_segments():
    sim, cpu, flow = make_flow(max_par=8.0)
    flow.set_arrival_rate(10000.0)
    sim.run_for(1.0)
    flow.set_blocked_fraction(1.0)
    sim.run_for(1.0)
    flow.finalize(sim.now)
    assert flow.queue_at(1.5) == pytest.approx(5000.0, rel=0.02)


def test_arrival_hysteresis_absorbs_tiny_changes():
    sim, cpu, flow = make_flow()
    flow.set_arrival_rate(10000.0)
    sim.run_for(1.0)
    flow.set_arrival_rate(10010.0)  # 0.1 % — below the band
    assert flow.arrival_rate == pytest.approx(10000.0)
    flow.set_arrival_rate(11000.0)  # 10 % — applied
    assert flow.arrival_rate == pytest.approx(11000.0)


def test_output_listener_fires_on_material_changes():
    sim, cpu, flow = make_flow()
    rates = []
    flow.output_listeners.append(rates.append)
    flow.set_arrival_rate(10000.0)
    sim.run_for(1.0)
    assert rates and rates[-1] == pytest.approx(10000.0)


def test_invalid_parameters_raise():
    sim = Simulator()
    with pytest.raises(SimulationError):
        FluidFlow(sim, "f", work_per_message=0.0, max_parallelism=1.0)
    with pytest.raises(SimulationError):
        FluidFlow(sim, "f", work_per_message=0.1, max_parallelism=0.0)
    flow = FluidFlow(sim, "f", work_per_message=0.1, max_parallelism=1.0)
    with pytest.raises(SimulationError):
        flow.set_arrival_rate(-1.0)


def test_flow_conservation_arrivals_equal_served_plus_queue():
    sim, cpu, flow = make_flow(capacity=16.0, max_par=16.0)
    flow.set_arrival_rate(30000.0)
    sim.run_for(1.0)
    for i in range(10):
        cpu.submit(ResourceTask(f"bg{i}", "bg", work=1.0, demand=1.0))
    sim.run_for(10.0)
    flow.finalize(sim.now)
    arrived = served = 0.0
    for a, b in zip(flow.segments, flow.segments[1:]):
        dt = b.time - a.time
        arrived += a.arrival_rate * dt
        served += a.serve_rate * dt
    assert arrived - served == pytest.approx(flow.queue, abs=arrived * 1e-6 + 1.0)
