"""Unit tests for the Kneedle implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import kneedle
from repro.errors import AnalysisError


def test_concave_increasing_knee():
    """Satopaa's canonical example family: y = x^(1/4) bends early."""
    x = np.linspace(0.0, 10.0, 101)
    y = x ** 0.25
    result = kneedle(x, y, curve="concave", direction="increasing")
    assert result.found
    assert result.knee_x < 2.5  # early diminishing returns


def test_convex_increasing_elbow_hockey_stick():
    """Flat then sharply rising: the elbow is at the bend (x=5)."""
    x = np.arange(0.0, 10.0, 0.5)
    y = np.where(x <= 5.0, 1.0 + 0.02 * x, 1.0 + 0.1 + 3.0 * (x - 5.0))
    result = kneedle(x, y, curve="convex", direction="increasing")
    assert result.found
    assert 4.0 <= result.knee_x <= 6.0


def test_convex_decreasing():
    x = np.linspace(0.0, 10.0, 101)
    y = 1.0 / (1.0 + x)  # steep drop then flat
    result = kneedle(x, y, curve="convex", direction="decreasing")
    assert result.found
    assert result.knee_x < 4.0


def test_concave_decreasing():
    x = np.linspace(0.0, 10.0, 101)
    y = 10.0 - x ** 2 / 10.0  # flat then dropping fast
    result = kneedle(x, y, curve="concave", direction="decreasing")
    assert result.found
    assert result.knee_x > 4.0


def test_straight_line_has_no_knee():
    x = np.linspace(0.0, 10.0, 50)
    y = 2.0 * x + 1.0
    result = kneedle(x, y)
    # the difference curve is ~0 everywhere; no meaningful knee
    assert result.knee_x is None or abs(max(result.difference_curve)) < 0.05


def test_constant_curve_returns_no_knee():
    x = np.linspace(0.0, 10.0, 20)
    y = np.full_like(x, 3.0)
    result = kneedle(x, y)
    assert not result.found


def test_smoothing_tolerates_noise():
    rng = np.random.default_rng(1)
    x = np.linspace(0.0, 10.0, 201)
    y = np.minimum(x / 2.0, 2.0) + rng.normal(0, 0.03, len(x))
    result = kneedle(x, y, curve="concave", smoothing_window=9)
    assert result.found
    assert 2.5 <= result.knee_x <= 5.5  # bend at x=4


def test_validation_errors():
    with pytest.raises(AnalysisError):
        kneedle([0, 1], [1, 2])  # too few points
    with pytest.raises(AnalysisError):
        kneedle([0, 1, 1], [1, 2, 3])  # non-increasing x
    with pytest.raises(AnalysisError):
        kneedle([0, 1, 2], [1, 2, 3], curve="wiggly")
    with pytest.raises(AnalysisError):
        kneedle([0, 1, 2], [1, 2, 3], direction="sideways")
    with pytest.raises(AnalysisError):
        kneedle([0, 1, 2], [1, 2, 3], sensitivity=-1.0)


@settings(max_examples=40, deadline=None)
@given(
    bend=st.floats(min_value=2.0, max_value=8.0),
    slope=st.floats(min_value=2.0, max_value=20.0),
)
def test_hockey_stick_property(bend, slope):
    """For any flat-then-steep convex curve, the detected knee lies
    near the bend."""
    x = np.linspace(0.0, 10.0, 101)
    y = np.where(x <= bend, 1.0, 1.0 + slope * (x - bend))
    result = kneedle(x, y, curve="convex", direction="increasing")
    assert result.found
    assert abs(result.knee_x - bend) <= 1.0
