"""Unit tests for the Kafka-like queue layer."""

import pytest

from repro.errors import ConfigurationError
from repro.stream import KafkaBroker, Record, Topic


def test_partition_append_and_read():
    topic = Topic("t", partitions=1)
    partition = topic.partitions[0]
    offsets = [partition.append(Record(b"k", f"v{i}".encode())) for i in range(5)]
    assert offsets == [0, 1, 2, 3, 4]
    records = partition.read(1, max_records=2)
    assert [r.value for r in records] == [b"v1", b"v2"]
    assert partition.end_offset == 5


def test_key_routing_is_deterministic_and_spreads():
    topic = Topic("t", partitions=8)
    for i in range(800):
        topic.produce(Record(f"key{i}".encode(), b"v"))
    sizes = [len(p) for p in topic.partitions]
    assert sum(sizes) == 800
    assert min(sizes) > 0  # every partition got some share
    # same key always routes to the same partition
    p1 = topic.partition_for(b"stable-key")
    p2 = topic.partition_for(b"stable-key")
    assert p1 is p2


def test_topic_needs_partitions():
    with pytest.raises(ConfigurationError):
        Topic("t", partitions=0)


def test_broker_topic_lifecycle():
    broker = KafkaBroker()
    broker.create_topic("orders", 2)
    assert broker.topic("orders").name == "orders"
    with pytest.raises(ConfigurationError):
        broker.create_topic("orders", 2)
    with pytest.raises(ConfigurationError):
        broker.topic("ghost")


def test_consumer_group_offsets_and_lag():
    broker = KafkaBroker()
    topic = broker.create_topic("t", 1)
    for i in range(10):
        topic.produce(Record(b"k", f"v{i}".encode()))
    records = broker.poll("g1", "t", 0, max_records=4)
    assert len(records) == 4
    broker.commit("g1", "t", 0, 4)
    assert broker.committed("g1", "t", 0) == 4
    assert broker.lag("g1", "t") == 6
    # a second group has independent offsets
    assert broker.committed("g2", "t", 0) == 0
    assert broker.lag("g2", "t") == 10


def test_poll_resumes_from_committed_offset():
    broker = KafkaBroker()
    topic = broker.create_topic("t", 1)
    for i in range(6):
        topic.produce(Record(b"k", f"v{i}".encode()))
    broker.commit("g", "t", 0, 3)
    records = broker.poll("g", "t", 0)
    assert records[0].value == b"v3"


def test_record_size():
    record = Record(b"abc", b"defg")
    assert record.size_bytes == 7
