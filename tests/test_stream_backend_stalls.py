"""Unit tests for write stalls and backend accounting."""

import pytest

from repro.config import CheckpointConfig, ClusterConfig, CostModel
from repro.core import MitigationPlan
from repro.errors import SimulationError
from repro.stream import ConstantSource, StageSpec, StreamJob


def starved_job():
    """A deployment whose single compaction thread cannot keep up."""
    return StreamJob(
        stages=[StageSpec("s", parallelism=8, state_entry_bytes=500.0,
                          distinct_keys=8000)],
        source=ConstantSource(8000.0),
        cluster=ClusterConfig(num_nodes=1, cores_per_node=4),
        checkpoint=CheckpointConfig(interval_s=2.0, first_at_s=2.0),
        cost=CostModel(cpu_seconds_per_message=0.0002,
                       compaction_cpu_seconds_per_mb=3.0),
        mitigation=MitigationPlan(compaction_threads=1),
        seed=7,
    )


def test_starved_compaction_accumulates_l0_and_stalls():
    job = starved_job()
    job.run(120.0)
    assert job.backend.write_stall_events > 0
    stalled = [
        inst for inst in job.stage("s").instances if inst.stall_level > 0
    ]
    assert stalled, "no instance reached a stall level"


def test_stall_levels_follow_l0_triggers():
    job = starved_job()
    instance = job.stage("s").instances[0]
    options = instance.store.options
    # below slowdown: no stall
    instance.stall_level = 0.7  # will be overwritten by _update_stall
    job.backend._update_stall(instance)
    assert instance.stall_level == 0.0
    # force L0 count to the slowdown trigger
    from repro.lsm import SSTable

    for _ in range(options.l0_slowdown_trigger):
        instance.store.levels.add_l0(SSTable([], logical_bytes=10, level=0))
    job.backend._update_stall(instance)
    assert instance.stall_level == 0.5
    for _ in range(options.l0_stop_trigger - options.l0_slowdown_trigger):
        instance.store.levels.add_l0(SSTable([], logical_bytes=10, level=0))
    job.backend._update_stall(instance)
    assert instance.stall_level == 1.0


def test_flush_of_stateless_instance_rejected():
    job = StreamJob(
        stages=[StageSpec("x", parallelism=1, stateful=False)],
        source=ConstantSource(10.0),
        cluster=ClusterConfig(num_nodes=1, cores_per_node=2),
        seed=1,
    )
    instance = job.stage("x").instances[0]
    with pytest.raises(SimulationError):
        job.backend.flush_instance(instance)


def test_backend_counters_track_jobs():
    job = starved_job()
    job.run(20.0)
    assert job.backend.flush_jobs_started > 0
    spans = job.collector.spans
    assert job.backend.flush_jobs_started >= len(spans.spans(kind="flush"))
