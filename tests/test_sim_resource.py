"""Unit tests for the processor-sharing resource."""

import pytest

from repro.errors import SimulationError
from repro.sim import ProcessorSharingResource, ResourceTask, Simulator


def make_cpu(capacity=4.0):
    sim = Simulator()
    return sim, ProcessorSharingResource(sim, "cpu", capacity)


def test_single_task_runs_at_its_demand():
    sim, cpu = make_cpu(capacity=4.0)
    done = []
    cpu.submit(ResourceTask("t", "x", work=2.0, demand=1.0,
                            on_complete=lambda t: done.append(sim.now)))
    sim.run()
    assert done == [2.0]  # 2 units of work at 1 unit/s


def test_uncontended_tasks_run_in_parallel_at_full_demand():
    sim, cpu = make_cpu(capacity=4.0)
    done = {}
    for name, work in (("a", 1.0), ("b", 3.0)):
        cpu.submit(ResourceTask(name, "x", work=work, demand=1.0,
                                on_complete=lambda t: done.setdefault(t.name, sim.now)))
    sim.run()
    assert done == {"a": 1.0, "b": 3.0}


def test_oversubscription_scales_all_rates_proportionally():
    sim, cpu = make_cpu(capacity=4.0)
    done = []
    for i in range(8):  # total demand 8 on 4 cores -> rate 0.5 each
        cpu.submit(ResourceTask(f"t{i}", "x", work=1.0, demand=1.0,
                                on_complete=lambda t: done.append(sim.now)))
    sim.run()
    assert all(abs(t - 2.0) < 1e-9 for t in done)


def test_completion_frees_capacity_for_remaining_tasks():
    sim, cpu = make_cpu(capacity=1.0)
    done = {}
    cpu.submit(ResourceTask("short", "x", work=0.5, demand=1.0,
                            on_complete=lambda t: done.setdefault("short", sim.now)))
    cpu.submit(ResourceTask("long", "x", work=1.0, demand=1.0,
                            on_complete=lambda t: done.setdefault("long", sim.now)))
    sim.run()
    # both share 0.5 each until short finishes at t=1.0 having done 0.5;
    # long then has 0.5 left at full speed -> 1.5 total
    assert done["short"] == pytest.approx(1.0)
    assert done["long"] == pytest.approx(1.5)


def test_late_arrival_slows_running_task():
    sim, cpu = make_cpu(capacity=1.0)
    done = {}
    cpu.submit(ResourceTask("first", "x", work=1.0, demand=1.0,
                            on_complete=lambda t: done.setdefault("first", sim.now)))
    sim.schedule(0.5, lambda: cpu.submit(
        ResourceTask("second", "x", work=0.25, demand=1.0,
                     on_complete=lambda t: done.setdefault("second", sim.now))))
    sim.run()
    # first does 0.5 work by t=0.5, then shares: 0.25 each until second
    # finishes at t=1.0; first finishes its last 0.25 at t=1.25
    assert done["second"] == pytest.approx(1.0)
    assert done["first"] == pytest.approx(1.25)


def test_demand_above_one_uses_multiple_units():
    sim, cpu = make_cpu(capacity=4.0)
    done = []
    cpu.submit(ResourceTask("wide", "x", work=4.0, demand=4.0,
                            on_complete=lambda t: done.append(sim.now)))
    sim.run()
    assert done == [1.0]


def test_utilization_segments_record_usage():
    sim, cpu = make_cpu(capacity=4.0)
    cpu.submit(ResourceTask("t", "x", work=2.0, demand=2.0))
    sim.run()
    assert cpu.utilization_at(0.5) == pytest.approx(2.0)
    assert cpu.utilization_at(1.5) == pytest.approx(0.0)


def test_task_observers_see_start_and_end():
    sim, cpu = make_cpu()
    events = []
    cpu.task_observers.append(lambda task, what: events.append((task.name, what)))
    cpu.submit(ResourceTask("t", "x", work=1.0))
    sim.run()
    assert events == [("t", "start"), ("t", "end")]


def test_running_count_by_kind():
    sim, cpu = make_cpu()
    cpu.submit(ResourceTask("f", "flush", work=10.0))
    cpu.submit(ResourceTask("c", "compaction", work=10.0))
    cpu.submit(ResourceTask("c2", "compaction", work=10.0))
    assert cpu.running_count() == 3
    assert cpu.running_count("compaction") == 2
    assert cpu.running_count("flush") == 1


def test_invalid_task_parameters_raise():
    with pytest.raises(SimulationError):
        ResourceTask("bad", "x", work=0.0)
    with pytest.raises(SimulationError):
        ResourceTask("bad", "x", work=1.0, demand=0.0)
    sim = Simulator()
    with pytest.raises(SimulationError):
        ProcessorSharingResource(sim, "cpu", 0.0)


def test_task_metadata_and_times():
    sim, cpu = make_cpu()
    task = cpu.submit(ResourceTask("t", "x", work=1.0, metadata={"k": 1}))
    sim.run()
    assert task.metadata == {"k": 1}
    assert task.start_time == 0.0
    assert task.end_time == pytest.approx(1.0)
    assert task.done
