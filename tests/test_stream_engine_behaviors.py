"""Behavioural tests: memtable-full flushes, init-phase desync,
auto-delay, and the result views."""

import numpy as np
import pytest

from repro.config import CheckpointConfig, ClusterConfig, CostModel
from repro.core import MitigationPlan
from repro.lsm import KiB, LSMOptions
from repro.stream import ConstantSource, PiecewiseSource, StageSpec, StreamJob


def small_cluster(**overrides):
    kwargs = dict(
        stages=[
            StageSpec("a", parallelism=4, state_entry_bytes=100.0,
                      distinct_keys=4000, selectivity=1.0),
            StageSpec("b", parallelism=4, state_entry_bytes=100.0,
                      distinct_keys=2000),
        ],
        source=ConstantSource(4000.0),
        cluster=ClusterConfig(num_nodes=2, cores_per_node=4),
        checkpoint=CheckpointConfig(interval_s=4.0, first_at_s=4.0),
        cost=CostModel(cpu_seconds_per_message=0.0002),
        seed=3,
    )
    kwargs.update(overrides)
    return StreamJob(**kwargs)


def test_memtable_full_triggers_flush_between_checkpoints():
    """§3.3: size-triggered flushes happen when the buffer is small
    relative to the write volume — the source of initial-counter skew."""
    job = small_cluster(
        lsm_options_factory=lambda spec, idx: LSMOptions(
            write_buffer_size=8 * KiB
        ),
        checkpoint=CheckpointConfig(interval_s=60.0, first_at_s=60.0),
    )
    job.run(20.0)  # no checkpoint fires, yet flushes happen
    reasons = {s.name.split("-")[0] for s in job.collector.spans}
    flushes = job.collector.spans.spans(kind="flush")
    assert flushes, "no memtable-full flushes occurred"
    some_store = job.stage("a").instances[0].store
    assert some_store.stats.memtable_full_flushes > 0


def test_init_phase_desynchronizes_l0_counters():
    """A heavy initialization phase followed by steady state leaves
    different stages with different L0 counts — the paper's explanation
    for why the statistical alignment is unpredictable."""
    job = small_cluster(
        source=PiecewiseSource([(0.0, 12000.0), (10.0, 4000.0)]),
        lsm_options_factory=lambda spec, idx: LSMOptions(
            write_buffer_size=int(40 * KiB) if spec.name == "a" else 64 * KiB
        ),
        checkpoint=CheckpointConfig(interval_s=8.0, first_at_s=12.0),
    )
    job.run(30.0)
    counts_a = {inst.store.l0_file_count for inst in job.stage("a").instances}
    counts_b = {inst.store.l0_file_count for inst in job.stage("b").instances}
    # the stages end the init phase on different counter values —
    # their future compaction bursts will not land on the same checkpoint
    assert counts_a != counts_b
    flushes_a = sum(i.store.stats.flush_count for i in job.stage("a").instances)
    flushes_b = sum(i.store.stats.flush_count for i in job.stage("b").instances)
    assert flushes_a > flushes_b  # tighter buffer + init burst flushed more
    a_store = job.stage("a").instances[0].store
    assert a_store.stats.memtable_full_flushes > 0


def test_auto_delay_policy_updates_from_observations():
    plan = MitigationPlan(compaction_delay_s=0.5, auto_delay=True)
    job = small_cluster(mitigation=plan)
    policy = job.backend.delay_policy
    assert policy.current_delay() == 0.5
    policy.observe_flush_phase(2000.0, 0.5, 1000.0, blocked_fraction=0.5)
    assert policy.current_delay() == pytest.approx(0.5)  # = 2000*0.5*0.5/1000
    policy.observe_flush_phase(2000.0, 1.0, 1000.0, blocked_fraction=1.0)
    assert policy.current_delay() == pytest.approx(2.0)


def test_result_queue_series_shape():
    job = small_cluster()
    result = job.run(20.0)
    times, queue = result.queue_series("a", 0.0, 20.0, dt=0.1)
    assert len(times) == len(queue) == 200
    assert queue.min() >= 0.0


def test_result_concurrency_series():
    job = small_cluster()
    result = job.run(30.0)
    times, flush_c = result.concurrency("flush", 0.0, 30.0)
    assert flush_c.max() >= 1
    _t, comp_c = result.concurrency("compaction", 0.0, 30.0, stage="a")
    assert comp_c.max() >= 0


def test_result_stage_latency_per_stage():
    job = small_cluster()
    result = job.run(20.0)
    t_a, lat_a, w_a = result.stage_latency("a", 2.0, 20.0)
    t_b, lat_b, _w = result.stage_latency("b", 2.0, 20.0)
    assert len(t_a) == len(lat_a) == len(t_b)
    assert np.all(lat_a >= 0) and np.all(lat_b >= 0)
    assert w_a.sum() > 0


def test_latency_timeline_windows_cover_span():
    job = small_cluster()
    result = job.run(20.0)
    times, p999 = result.latency_timeline(0.999, window=1.0, start=2.0, end=20.0)
    assert times[0] == pytest.approx(2.0)
    assert len(times) == 18


def test_checkpoint_stats_visible_via_result():
    job = small_cluster()
    result = job.run(20.0)
    stats = result.checkpoint_stats()
    assert len(stats) == len(job.coordinator.records)
    assert stats[0].flush_count.get("a", 0) == 4
