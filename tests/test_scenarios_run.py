"""Behavioural tests for the unified scenario path: job wiring, the new
arrival sources, tenancy, legacy-wrapper equivalence and the
windowed-join exactly-once invariants under a crash-and-restore plan."""

import warnings

import pytest

from repro.apps.join_job import JOIN_STAGES, build_join_job
from repro.apps.tenancy import tenant_initial_l0, tenantize
from repro.errors import ConfigurationError
from repro.experiments.runner import (
    ExperimentSettings,
    legacy_scenario,
    run_traffic,
    run_wordcount,
)
from repro.faults import FaultPlan, FaultSpec
from repro.scenarios import (
    ScenarioSpec,
    WorkloadSpec,
    build_scenario_job,
    resolve_scenario,
    run_scenario,
    scenario,
    scenario_shard_unit,
)
from repro.scenarios.run import execute_scenario
from repro.stream.sources import (
    ClosedLoopSource,
    ConstantSource,
    DiurnalSource,
    PiecewiseSource,
)
from repro.stream.stage import SOURCE_INPUT

QUICK = ExperimentSettings(duration_s=30.0, warmup_s=10.0, seed=3)


# ----------------------------------------------------------------------
# job wiring
# ----------------------------------------------------------------------


def test_resolve_scenario_accepts_name_spec_and_dict():
    by_name = resolve_scenario("baseline_traffic")
    assert by_name is scenario("baseline_traffic")
    assert resolve_scenario(by_name) is by_name
    revived = resolve_scenario(by_name.to_dict())
    assert revived == by_name
    with pytest.raises(ConfigurationError):
        resolve_scenario(42)


@pytest.mark.parametrize("name, source_type", [
    ("baseline_traffic", ConstantSource),
    ("diurnal_flash", DiurnalSource),
    ("closed_loop", ClosedLoopSource),
])
def test_build_scenario_job_picks_the_arrival_source(name, source_type):
    job = build_scenario_job(scenario(name), seed=1)
    assert isinstance(job.source, source_type)


def test_piecewise_workload_builds_piecewise_source():
    spec = ScenarioSpec(
        app="traffic",
        workload=WorkloadSpec(arrival="piecewise",
                              schedule=((0.0, 1000.0), (10.0, 2000.0))),
    )
    job = build_scenario_job(spec, seed=1)
    assert isinstance(job.source, PiecewiseSource)
    assert spec.workload.steady_rate() == 2000.0


def test_join_job_has_a_two_input_stage():
    job = build_join_job(seed=1)
    names = [stage.spec.name for stage in job.stages]
    assert names == ["impressions", "clicks", "join", "sessions"]
    join_index = names.index("join")
    # the join consumes both branches; both branches consume the source
    assert sorted(job._inputs[join_index]) == [
        names.index("impressions"), names.index("clicks")
    ]
    assert set(job._source_fed) == {names.index("impressions"),
                                    names.index("clicks")}


def test_join_window_sizes_the_join_state():
    job = build_join_job(message_rate=10000.0, window_s=5.0, seed=1)
    join = next(s for s in job.stages if s.spec.name == "join")
    assert join.spec.distinct_keys == 50000


def test_multi_tenant_job_replicates_the_chain():
    job = build_scenario_job(scenario("multi_tenant"), seed=1)
    names = [stage.spec.name for stage in job.stages]
    assert len(names) == 4 * 3  # 4 tenants x 3-stage traffic chain
    assert all(any(n.startswith(f"t{i}.") for n in names) for i in range(4))


def test_tenantize_wires_chains_independently():
    stages = tenantize(JOIN_STAGES, 2)
    by_name = {s.name: s for s in stages}
    assert by_name["t1.join"].inputs == ("t1.impressions", "t1.clicks")
    assert by_name["t0.sessions"].inputs == ("t0.join",)
    assert by_name["t0.impressions"].inputs == (SOURCE_INPUT,)
    # each tenant receives its share of the source
    assert by_name["t0.impressions"].source_fraction == pytest.approx(
        JOIN_STAGES[0].source_fraction / 2
    )
    assert tenant_initial_l0({"join": 3}, 2) == {"t0.join": 3, "t1.join": 3}


def test_skewed_workload_reaches_the_engine():
    job = build_scenario_job(scenario("hotkey_shift"), seed=1)
    assert job._skew_schedule == ((40.0, 0.30, 0), (120.0, 0.30, 2))


def test_shard_units_per_app():
    whole, what, _ = scenario_shard_unit(scenario("baseline_traffic"))
    assert (whole, what) == (4, "node groups")
    whole, what, _ = scenario_shard_unit(scenario("baseline_wordcount"))
    assert (whole, what) == (16, "cores")
    whole, what, _ = scenario_shard_unit(scenario("windowed_join"))
    assert (whole, what) == (4, "node groups")


# ----------------------------------------------------------------------
# the new sources
# ----------------------------------------------------------------------


def test_diurnal_source_cycles_between_trough_and_peak():
    src = DiurnalSource(base_rate=1000.0, period_s=100.0, trough_factor=0.2)
    peak = src._diurnal_rate(0.0)
    trough = src._diurnal_rate(50.0)
    assert peak == pytest.approx(1000.0, rel=0.05)
    assert trough == pytest.approx(200.0, rel=0.2)
    assert src.steady_rate() == 1000.0


def test_diurnal_burst_multiplies_the_curve():
    quiet = DiurnalSource(base_rate=1000.0, period_s=100.0)
    bursty = DiurnalSource(base_rate=1000.0, period_s=100.0,
                           bursts=((10.0, 5.0, 2.0),))
    assert bursty._rate_at(12.0) == pytest.approx(
        2.0 * quiet._rate_at(12.0)
    )
    assert bursty._rate_at(20.0) == pytest.approx(quiet._rate_at(20.0))


def test_closed_loop_steady_rate_is_littles_law():
    src = ClosedLoopSource(clients=1000, think_time_s=1.0,
                           base_service_s=0.001)
    assert src.steady_rate() == pytest.approx(1000.0 / 1.001)


def test_closed_loop_source_backs_off_under_backlog():
    """The closed-loop run self-limits: its offered rate never exceeds
    the open-loop equivalent, and a backlogged system pushes it below."""
    result = run_scenario("closed_loop", settings=QUICK)
    spec = scenario("closed_loop")
    open_rate = spec.workload.steady_rate()
    rates = [r for _, r in result.job.source.rate_history]
    assert rates and max(rates) <= open_rate * 1.001
    assert min(rates) < open_rate


# ----------------------------------------------------------------------
# execute_scenario semantics
# ----------------------------------------------------------------------


def test_run_scenario_accepts_names_and_specs():
    by_name = run_scenario("baseline_traffic", settings=QUICK)
    by_spec = run_scenario(scenario("baseline_traffic"), settings=QUICK)
    assert (by_name.tail_summary(start=10.0)
            == by_spec.tail_summary(start=10.0))


def test_scenario_own_faults_apply_and_override_wins():
    crash = FaultPlan(name="crash", faults=(
        FaultSpec(kind="worker_crash", at_s=15.0, duration_s=1.0, node=0),
    ))
    spec = scenario("baseline_traffic").with_faults(crash)
    result = execute_scenario(spec, settings=QUICK)
    assert [e["kind"] for e in result.job.fault_injector.events] == [
        "worker_crash"
    ]
    # an explicit override replaces the scenario's own plan
    stall = FaultPlan(name="stall", faults=(
        FaultSpec(kind="flush_stall", at_s=15.0, duration_s=2.0, node=0),
    ))
    overridden = execute_scenario(spec, settings=QUICK, faults=stall)
    assert [e["kind"] for e in overridden.job.fault_injector.events] == [
        "flush_stall"
    ]


def test_legacy_wrappers_are_deprecated_but_equivalent():
    with pytest.deprecated_call():
        legacy = run_traffic(settings=QUICK)
    spec = legacy_scenario("traffic")
    unified = execute_scenario(spec, settings=QUICK)
    assert (legacy.tail_summary(start=10.0)
            == unified.tail_summary(start=10.0))


def test_run_wordcount_warns_once_per_call():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        run_wordcount(settings=QUICK)
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)


# ----------------------------------------------------------------------
# windowed join under crash-and-restore
# ----------------------------------------------------------------------


def test_windowed_join_exactly_once_under_crash():
    """The two-input join must keep its invariants when a worker crash
    rewinds both branches to the last completed checkpoint: no lost or
    duplicated window state, watermarks monotone after replay."""
    crash = FaultPlan(name="crash-restore", faults=(
        FaultSpec(kind="worker_crash", at_s=20.0, duration_s=2.0, node=0),
    ))
    spec = scenario("windowed_join")
    settings = ExperimentSettings(duration_s=60.0, warmup_s=10.0, seed=7)
    result = execute_scenario(spec, settings=settings, faults=crash)
    job = result.job
    (event,) = job.fault_injector.events
    assert event["kind"] == "worker_crash"
    assert event["restores"], "crash must restore from a checkpoint"
    assert all(r["restored"] for r in event["restores"])
    assert event["replayed_messages"] > 0
    assert job.invariant_checker.violations == []
    # both input branches and the join keep flowing after the restore
    times, latency, _ = result.end_to_end_latency(30.0, 60.0)
    assert len(times) > 0 and float(latency.max()) > 0.0
    # checkpoints complete again after the crash (alignment recovered)
    completed_after = [
        t for t in result.coordinator.checkpoint_times() if t > 22.0
    ]
    assert completed_after
