"""The ``repro profile`` hot-spot profiler."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cli import main
from repro.experiments.profile import ProfileReport, profile_run


def test_profile_run_collects_dispatch_histogram():
    report = profile_run(duration_s=16.0, with_cprofile=False)
    assert isinstance(report, ProfileReport)
    assert report.events > 0
    assert report.wall_s > 0
    assert report.events_per_second > 0
    assert report.dispatch, "dispatch histogram must not be empty"
    top = report.dispatch[0]
    assert set(top) == {"callback", "count", "self_s"}
    # Sorted by self time descending.
    selves = [row["self_s"] for row in report.dispatch]
    assert selves == sorted(selves, reverse=True)
    assert report.hotspots == []  # cProfile pass skipped


def test_profile_run_with_cprofile_names_known_hotspots():
    report = profile_run(duration_s=16.0, with_cprofile=True)
    assert report.hotspots
    tottimes = [row["tottime"] for row in report.hotspots]
    assert tottimes == sorted(tottimes, reverse=True)
    names = " ".join(row["function"] for row in report.hotspots)
    # The kernel run loop is always on a profile of a simulation.
    assert "kernel.py" in names


def test_profile_run_wordcount_and_shards():
    report = profile_run(kind="wordcount", duration_s=12.0,
                         with_cprofile=False, shards=2)
    assert report.kind == "wordcount" and report.events > 0
    with pytest.raises(ConfigurationError):
        profile_run(kind="nosuch", duration_s=4.0)
    with pytest.raises(ConfigurationError):
        profile_run(duration_s=4.0, shards=3)  # 4 nodes % 3 != 0


def test_profile_report_roundtrips_to_json():
    report = profile_run(duration_s=8.0, with_cprofile=False)
    data = json.loads(json.dumps(report.to_dict()))
    assert data["events"] == report.events
    assert data["dispatch"] == report.dispatch
    text = report.render(top=5)
    assert "dispatch histogram" in text
    assert f"{report.events} events" in text


def test_cli_profile_smoke(capsys):
    assert main(["profile", "fig8", "--duration", "8",
                 "--no-cprofile", "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "profile:fig8" in out and "dispatch histogram" in out


def test_cli_profile_json(capsys):
    assert main(["profile", "fig17", "--duration", "8", "--json",
                 "--no-cprofile"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["kind"] == "wordcount" and data["events"] > 0


def test_cli_profile_rejects_bad_shards(capsys):
    assert main(["profile", "fig8", "--duration", "4",
                 "--shards", "3", "--no-cprofile"]) == 2
    assert "error" in capsys.readouterr().err
