"""Unit tests for overlap analysis and scheduled-coincidence math."""

import pytest

from repro.analysis import (
    alignment_score,
    burst_alignment,
    coincidence_period,
    overlap_report,
    scheduled_overlap_times,
)
from repro.errors import AnalysisError
from repro.metrics import ActivitySpan, SpanLog


def test_scheduled_overlaps_at_lcm():
    """Figure 1's setting: flush every 8 s, compaction every 32 s —
    they coincide every 32 s."""
    times = scheduled_overlap_times(8.0, 32.0, horizon=130.0)
    assert times == [0.0, 32.0, 64.0, 96.0, 128.0]


def test_scheduled_overlaps_with_offsets():
    times = scheduled_overlap_times(8.0, 32.0, horizon=100.0,
                                    offset_a=4.0, offset_b=4.0)
    assert times == [4.0, 36.0, 68.0, 100.0]


def test_disjoint_offsets_never_coincide():
    times = scheduled_overlap_times(8.0, 32.0, horizon=200.0, offset_a=1.0)
    assert times == []


def test_coincidence_period_is_lcm():
    assert coincidence_period(8.0, 32.0) == pytest.approx(32.0)
    assert coincidence_period(6.0, 4.0) == pytest.approx(12.0)
    assert coincidence_period(16.0, 16.0) == pytest.approx(16.0)


def test_invalid_periods_raise():
    with pytest.raises(AnalysisError):
        scheduled_overlap_times(0.0, 1.0, 10.0)
    with pytest.raises(AnalysisError):
        coincidence_period(-1.0, 2.0)


def make_log():
    log = SpanLog()

    def add(kind, stage, start, end):
        log.add(ActivitySpan(kind=kind, name="x", stage=stage, instance=0,
                             node="n", start=start, end=end))
    return log, add


def test_overlap_report_quantifies_coactivity():
    log, add = make_log()
    add("flush", "s0", 0.0, 1.0)
    add("compaction", "s0", 0.5, 3.0)
    report = overlap_report(log, 0.0, 4.0, dt=0.01)
    assert report.flush_busy_s == pytest.approx(1.0, abs=0.05)
    assert report.compaction_busy_s == pytest.approx(2.5, abs=0.05)
    assert report.flush_compaction_overlap_s == pytest.approx(0.5, abs=0.05)
    assert 0.15 < report.overlap_fraction < 0.25
    assert report.peak_flush_concurrency == 1


def test_overlap_report_empty_window_raises():
    log, _add = make_log()
    with pytest.raises(AnalysisError):
        overlap_report(log, 5.0, 5.0)


def test_burst_alignment_counts_per_checkpoint():
    log, add = make_log()
    add("compaction", "s0", 1.0, 2.0)
    add("compaction", "s0", 1.5, 2.0)
    add("compaction", "s1", 9.0, 10.0)
    result = burst_alignment(log, ["s0", "s1"], [0.0, 8.0])
    assert result[0] == {"s0": 2, "s1": 0}
    assert result[1] == {"s0": 0, "s1": 1}


def test_alignment_score_high_when_bursts_coincide():
    aligned = {0: {"s0": 64, "s1": 64}, 1: {"s0": 0, "s1": 0}}
    alternating = {0: {"s0": 64, "s1": 0}, 1: {"s0": 0, "s1": 64}}
    assert alignment_score(aligned) > 0.95
    assert alignment_score(alternating) < 0.85


def test_alignment_score_empty_raises():
    with pytest.raises(AnalysisError):
        alignment_score({})
