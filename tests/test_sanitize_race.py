"""Runtime sanitizer tests: race detection and ordering checks."""

import random

import pytest

from repro.experiments.parallel import RunSpec, spec_cache_key
from repro.experiments.runner import ExperimentSettings
from repro.sanitize import (
    OrderingReport,
    ProbeTarget,
    RaceReport,
    check_cache_key_stability,
    check_summary_order_independence,
    detect_races,
    reorder,
    sanitize_experiment,
)
from repro.serialize import from_dict, to_dict
from repro.sim.events import TIE_BREAKS, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.process import spawn
from repro.trace import Tracer

# ----------------------------------------------------------------------
# kernel tie-breaking
# ----------------------------------------------------------------------


def test_tie_break_modes_only_reorder_equal_keys():
    order = {}
    for mode in TIE_BREAKS:
        queue = EventQueue(tie_break=mode)
        fired = []
        queue.push(1.0, lambda m=None: fired.append("a"))
        queue.push(1.0, lambda m=None: fired.append("b"))
        queue.push(0.5, lambda m=None: fired.append("early"))
        queue.push(1.0, lambda m=None: fired.append("urgent"), priority=-10)
        while True:
            event = queue.pop()
            if event is None:
                break
            event.callback(*event.args)
        order[mode] = fired
    # Time and priority always dominate; only equal-key order flips.
    assert order["fifo"] == ["early", "urgent", "a", "b"]
    assert order["lifo"] == ["early", "urgent", "b", "a"]


def test_unknown_tie_break_rejected():
    with pytest.raises(Exception):
        EventQueue(tie_break="random")


def test_spawn_priority_orders_same_time_wakeups():
    for mode in TIE_BREAKS:
        sim = Simulator(tie_break=mode)
        fired = []

        def ticker(tag):
            yield 1.0
            fired.append(tag)

        spawn(sim, ticker("normal"))
        spawn(sim, ticker("urgent"), priority=-10)
        sim.run()
        assert fired == ["urgent", "normal"], mode
        fired.clear()


# ----------------------------------------------------------------------
# race detection
# ----------------------------------------------------------------------


def _planted_race_factory(tie_break):
    """Two same-timestamp events whose order changes the result."""
    sim = Simulator(seed=1, tracer=Tracer(categories={"kernel"}),
                    tie_break=tie_break)
    state = {"value": 0}

    def add():
        state["value"] += 10

    def double():
        state["value"] *= 2

    sim.schedule(1.0, add)
    sim.schedule(1.0, double)
    return ProbeTarget(sim=sim, digest=lambda: dict(state),
                       run=lambda duration: sim.run(until=duration))


def _tie_robust_factory(tie_break):
    """Two same-timestamp events that commute."""
    sim = Simulator(seed=1, tracer=Tracer(categories={"kernel"}),
                    tie_break=tie_break)
    state = {"value": 0}
    sim.schedule(1.0, lambda: state.__setitem__("value", state["value"] + 1))
    sim.schedule(1.0, lambda: state.__setitem__("value", state["value"] + 2))
    return ProbeTarget(sim=sim, digest=lambda: dict(state),
                       run=lambda duration: sim.run(until=duration))


def test_planted_race_is_detected_and_localized():
    report = detect_races(_planted_race_factory, duration_s=2.0,
                          window_s=1.0, label="planted")
    assert not report.ok
    assert report.divergent_windows >= 1
    divergence = report.divergences[0]
    # The report names both conflicting events at the divergent dispatch.
    assert "add" in divergence.baseline_event["name"]
    assert "double" in divergence.perturbed_event["name"]
    assert divergence.baseline_event["time"] == pytest.approx(1.0)
    assert divergence.state_delta["value"] == {"baseline": 20, "perturbed": 10}
    rendered = report.render()
    assert "DIVERGENCE" in rendered and "add" in rendered


def test_tie_robust_model_passes():
    report = detect_races(_tie_robust_factory, duration_s=2.0, window_s=1.0)
    assert report.ok
    assert report.divergences == []
    assert "no divergence" in report.render()


def test_race_report_roundtrips_through_serialize():
    report = detect_races(_planted_race_factory, duration_s=2.0, window_s=1.0)
    revived = from_dict("RaceReport", to_dict(report))
    assert isinstance(revived, RaceReport)
    assert revived.to_dict() == report.to_dict()
    assert not revived.ok


# ----------------------------------------------------------------------
# ordering checks
# ----------------------------------------------------------------------


def test_reorder_preserves_content():
    data = {"b": [1, {"y": 2, "x": 3}], "a": {"k": (4, 5)}}
    shuffled = reorder(data, random.Random(0))
    assert shuffled == data  # == ignores dict order
    assert shuffled is not data


def test_cache_key_stability_for_real_spec():
    spec = RunSpec(kind="wordcount",
                   settings=ExperimentSettings(duration_s=16.0, seed=3))
    check = check_cache_key_stability(spec, perturbations=6)
    assert check.ok
    assert check.perturbations == 6
    assert spec_cache_key(spec) == spec_cache_key(
        RunSpec(kind="wordcount",
                settings=ExperimentSettings(duration_s=16.0, seed=3)))


def test_order_dependent_serialization_is_caught():
    class OrderLeaky:
        """to_dict leaks dict insertion order into a list — a bug."""

        def __init__(self, payload):
            self.payload = dict(payload)

        def to_dict(self):
            return {"payload": self.payload,
                    "key_order": list(self.payload)}

        @classmethod
        def from_dict(cls, data):
            return cls(data["payload"])

    check = check_summary_order_independence(
        OrderLeaky({"a": 1, "b": 2, "c": 3}), perturbations=8
    )
    assert not check.ok
    assert "insertion order" in check.detail


# ----------------------------------------------------------------------
# the headline run is race-free
# ----------------------------------------------------------------------


def test_wordcount_headline_run_is_sanitize_clean():
    report = sanitize_experiment(kind="wordcount", duration_s=16.0,
                                 window_s=2.0, seed=1)
    assert report.ok, report.render()
    assert report.race.ok and report.race.windows == 8
    # Both probes executed the same work, just in a perturbed order.
    assert report.race.events_fired[0] == report.race.events_fired[1]
    assert report.ordering.ok
    names = {check.name for check in report.ordering.checks}
    assert names == {"cache-key-stability", "summary-order-independence"}
    revived = from_dict("SanitizeReport", to_dict(report))
    assert revived.ok and revived.race.windows == 8


def test_cli_sanitize_command(capsys):
    import json

    from repro.experiments.cli import main

    assert main(["sanitize", "--duration", "8", "--window", "2"]) == 0
    out = capsys.readouterr().out
    assert "sanitize: PASS" in out
    assert main(["sanitize", "--duration", "8", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is True
    assert report["race"]["divergent_windows"] == 0


# ----------------------------------------------------------------------
# the mitigation zoo is race-free (slow lane: run with `-m slow`)
# ----------------------------------------------------------------------


from repro.core.mitigation import MitigationPlan  # noqa: E402
from repro.lsm import policy_names  # noqa: E402


@pytest.mark.slow
@pytest.mark.parametrize("policy", policy_names())
def test_policy_matrix_is_sanitize_clean(policy):
    """Schedule perturbation finds no divergence under any zoo policy."""
    report = sanitize_experiment(
        kind="wordcount", duration_s=16.0, window_s=2.0, seed=1,
        mitigation=MitigationPlan(compaction_policy=policy),
    )
    assert report.ok, report.render()
    assert report.race.events_fired[0] == report.race.events_fired[1]
