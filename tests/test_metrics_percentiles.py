"""Unit tests for latency inversion and percentile math."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.metrics import (
    compose_latencies,
    latency_from_segments,
    rates_on_grid,
    tail_summary,
    weighted_quantile,
    windowed_quantile,
)
from repro.sim.fluid import FlowSegment


def seg(time, lam, mu, queue=0.0, blocked=0.0, alloc=0.0):
    return FlowSegment(time, lam, mu, queue, blocked, alloc)


def test_rates_on_grid_piecewise_values():
    segments = [seg(0.0, 100.0, 100.0), seg(5.0, 200.0, 150.0)]
    times, lam, mu, _q = rates_on_grid(segments, 0.0, 10.0, 1.0)
    assert lam[2] == 100.0 and mu[2] == 100.0
    assert lam[7] == 200.0 and mu[7] == 150.0


def test_rates_on_grid_integrates_queue():
    segments = [seg(0.0, 200.0, 100.0, queue=0.0)]
    _t, _lam, _mu, queue = rates_on_grid(segments, 0.0, 4.0, 1.0)
    assert queue[3] == pytest.approx(300.0)  # (200-100)*3


def test_latency_zero_when_service_keeps_up():
    segments = [seg(0.0, 100.0, 100.0)]
    _t, latency, _w = latency_from_segments(segments, 0.0, 10.0, dt=0.01)
    assert np.allclose(latency, 0.0, atol=0.02)


def test_latency_matches_analytic_outage():
    """Service stops for 1 s: a message arriving at outage start waits
    ~1 s; afterwards the backlog drains at 2x arrival rate."""
    lam = 100.0
    segments = [
        seg(0.0, lam, lam),
        seg(5.0, lam, 0.0),          # outage
        seg(6.0, lam, 2 * lam, queue=lam * 1.0),  # drain
    ]
    times, latency, _w = latency_from_segments(segments, 0.0, 12.0, dt=0.005)
    at = lambda t: latency[np.searchsorted(times, t)]
    assert at(5.0) == pytest.approx(1.0, abs=0.03)
    # arriving mid-outage: waits rest of outage + its queue position
    assert at(5.5) == pytest.approx(0.5 + 0.5 * lam * 0.5 / (2 * lam) * 2, abs=0.06)
    # after the backlog drains (1 s of drain), latency back to ~0
    assert at(8.0) == pytest.approx(0.0, abs=0.03)


def test_latency_base_offset_added():
    segments = [seg(0.0, 100.0, 100.0)]
    _t, latency, _w = latency_from_segments(
        segments, 0.0, 5.0, dt=0.01, base_latency=0.25
    )
    assert latency.min() >= 0.25


def test_latency_censored_at_history_end():
    segments = [seg(0.0, 100.0, 0.0)]  # never served
    times, latency, _w = latency_from_segments(segments, 0.0, 10.0, dt=0.1)
    assert latency[0] == pytest.approx(10.0, abs=0.2)


def test_compose_latencies_shifts_downstream():
    times = np.arange(0.0, 10.0, 0.1)
    stage1 = np.where(times < 5.0, 1.0, 0.0)
    stage2 = np.where(times >= 5.0, 2.0, 0.0)
    total = compose_latencies(times, [stage1, stage2])
    # entering stage1 at 4.5: L1=1 -> enters stage2 at 5.5 -> +2
    idx = np.searchsorted(times, 4.5)
    assert total[idx] == pytest.approx(3.0)
    idx_early = np.searchsorted(times, 1.0)
    assert total[idx_early] == pytest.approx(1.0)


def test_weighted_quantile_unweighted_matches_numpy():
    values = np.array([1.0, 2.0, 3.0, 10.0])
    assert weighted_quantile(values, 0.5) == pytest.approx(np.quantile(values, 0.5))


def test_weighted_quantile_respects_weights():
    values = np.array([1.0, 100.0])
    weights = np.array([999.0, 1.0])
    assert weighted_quantile(values, 0.5, weights) == pytest.approx(1.0, abs=0.2)
    weights = np.array([1.0, 999.0])
    assert weighted_quantile(values, 0.5, weights) == pytest.approx(100.0, abs=0.2)


def test_weighted_quantile_validation():
    with pytest.raises(AnalysisError):
        weighted_quantile(np.array([1.0]), 1.5)
    with pytest.raises(AnalysisError):
        weighted_quantile(np.array([]), 0.5)
    with pytest.raises(AnalysisError):
        weighted_quantile(np.array([1.0]), 0.5, np.array([0.0]))
    with pytest.raises(AnalysisError):
        weighted_quantile(np.array([1.0, 2.0]), 0.5, np.array([1.0]))


def test_windowed_quantile_isolates_spike_window():
    times = np.arange(0.0, 10.0, 0.01)
    values = np.where((times >= 4.0) & (times < 5.0), 2.0, 0.1)
    w_times, w_values = windowed_quantile(times, values, window=1.0, quantile=0.999)
    spike_idx = np.searchsorted(w_times, 4.0)
    assert w_values[spike_idx] == pytest.approx(2.0)
    assert w_values[0] == pytest.approx(0.1)


def test_windowed_quantile_rejects_bad_window():
    with pytest.raises(AnalysisError):
        windowed_quantile(np.array([0.0]), np.array([1.0]), 0.0, 0.5)


def test_tail_summary_keys_and_ordering():
    values = np.random.default_rng(0).exponential(1.0, 10000)
    summary = tail_summary(values)
    assert set(summary) == {"p50", "p95", "p99", "p999", "max"}
    assert summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["p999"] <= summary["max"]


def test_empty_segments_raise():
    with pytest.raises(AnalysisError):
        rates_on_grid([], 0.0, 1.0, 0.1)
    with pytest.raises(AnalysisError):
        rates_on_grid([seg(0.0, 1.0, 1.0)], 1.0, 1.0, 0.1)
