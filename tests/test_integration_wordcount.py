"""Integration tests: the WordCount case study (§5.2)."""


from repro.analysis import find_spikes

WARMUP, DURATION = 40.0, 160.0


def test_wordcount_baseline_tail_matches_paper_scale(wordcount_baseline):
    tails = wordcount_baseline.tail_summary(start=WARMUP)
    # paper: baseline p99.9 ≈ 1.3 s
    assert 0.9 <= tails["p999"] <= 1.8


def test_wordcount_solution_improves_tail(wordcount_baseline, wordcount_solution):
    base = wordcount_baseline.tail_summary(start=WARMUP)
    sol = wordcount_solution.tail_summary(start=WARMUP)
    # paper: 1.3 s -> 0.7 s (~54 %); accept anything clearly better
    assert sol["p999"] < 0.75 * base["p999"]
    assert sol["p999"] < 0.9  # sub-second


def test_wordcount_single_node_hosts_everything(wordcount_baseline):
    assert len(wordcount_baseline.job.nodes) == 1
    node = wordcount_baseline.job.nodes[0]
    assert len(node.instances) == 128  # 64 split + 64 count


def test_wordcount_only_count_stage_checkpoints(wordcount_baseline):
    stages = {s.stage for s in wordcount_baseline.spans}
    assert stages == {"count"}


def test_wordcount_baseline_periodic_spikes(wordcount_baseline):
    times, p999 = wordcount_baseline.latency_timeline(
        0.999, window=0.5, start=WARMUP, end=DURATION
    )
    spikes = find_spikes(times, p999, threshold=0.8)
    assert len(spikes) >= 3


def test_wordcount_solution_spreads_compactions(wordcount_solution):
    counts = wordcount_solution.spans.per_cycle_counts(
        wordcount_solution.coordinator.checkpoint_times(), kind="compaction"
    )
    active = [c for c in counts.values() if c > 0]
    assert len(active) >= 6
    assert max(active) < 64


def test_wordcount_compaction_concurrency_reduced(
    wordcount_baseline, wordcount_solution
):
    _t, base_c = wordcount_baseline.concurrency("compaction", WARMUP, DURATION)
    _t, sol_c = wordcount_solution.concurrency("compaction", WARMUP, DURATION)
    assert base_c.max() >= 32
    assert sol_c.max() < base_c.max()
