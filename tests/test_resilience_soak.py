"""Tests for the chaos-soak harness (repro.resilience.soak), the
cache-key coverage of the resilience field, and the millibottleneck
detector's resilience-window attribution."""

import json

import numpy as np
import pytest

from repro.analysis.millibottleneck import SpikeAttribution, detect
from repro.errors import OverloadError
from repro.resilience import ResilienceConfig
from repro.resilience.soak import SoakReport, run_soak

SHORT_PLAN = {
    "name": "soak-short",
    "faults": [
        {"kind": "flush_stall", "at_s": 24.0, "duration_s": 6.0, "node": 0},
    ],
}


def short_soak(**overrides):
    kwargs = dict(
        kind="traffic",
        seeds=(5,),
        duration_s=60.0,
        warmup_s=10.0,
        faults=SHORT_PLAN,
        jobs=1,
        cache=False,
    )
    kwargs.update(overrides)
    return run_soak(**kwargs)


# ----------------------------------------------------------------------
# run_soak end to end
# ----------------------------------------------------------------------


def test_short_soak_passes_and_audits_each_window():
    report = short_soak()
    assert report.ok
    assert report.require_pass() is report
    assert report.failures == []
    (run,) = report.runs
    assert run["seed"] == 5
    assert run["ok"] and run["failures"] == []
    (window,) = run["windows"]
    assert window["label"] == "flush_stall"
    assert window["start"] == pytest.approx(24.0)
    assert window["end"] == pytest.approx(30.0)
    assert window["recovered_at"] is not None
    assert 30.0 < window["recovered_at"] <= window["budget_until"]
    assert run["baseline_p999_s"] > 0.0
    assert run["invariant_violations"] == 0
    # the whole report serializes (what `repro soak --json` emits)
    assert json.loads(json.dumps(report.to_dict()))["runs"][0]["seed"] == 5


def test_soak_is_deterministic_run_to_run():
    first = short_soak()
    second = short_soak()
    assert first.to_dict() == second.to_dict()


def test_soak_report_aggregates_failures_and_raises():
    report = SoakReport(runs=[
        {"seed": 1, "ok": False, "failures": ["queue blow-up"]},
        {"seed": 2, "ok": True, "failures": []},
    ])
    assert not report.ok
    assert report.failures == ["seed 1: queue blow-up"]
    with pytest.raises(OverloadError, match="queue blow-up"):
        report.require_pass()


def test_empty_soak_report_is_vacuously_ok():
    assert SoakReport().ok
    assert SoakReport().require_pass().runs == []


# ----------------------------------------------------------------------
# cache keys cover the resilience field
# ----------------------------------------------------------------------


def test_cache_key_distinguishes_resilience_configs():
    from repro.experiments.parallel import RunSpec, spec_cache_key
    from repro.experiments.runner import ExperimentSettings

    def spec(resilience):
        return RunSpec(
            kind="traffic",
            settings=ExperimentSettings(duration_s=30.0, warmup_s=5.0, seed=1),
            resilience=resilience,
        )

    unguarded = spec_cache_key(spec(None))
    default = spec_cache_key(spec(True))
    custom = spec_cache_key(spec(ResilienceConfig(latency_slo_s=2.0)))
    assert len({unguarded, default, custom}) == 3
    # True coerces to the default config: same content, same address
    assert default == spec_cache_key(spec(ResilienceConfig()))


# ----------------------------------------------------------------------
# millibottleneck: resilience-window attribution
# ----------------------------------------------------------------------


def synthetic_timeline(spike_times, duration=100.0, dt=0.05, base=0.3,
                       peak=2.0):
    times = np.arange(0.0, duration, dt)
    values = np.full(len(times), base)
    for t0 in spike_times:
        values[(times >= t0) & (times < t0 + 1.0)] = peak
    return times, values


def test_detect_labels_spikes_inside_resilience_windows():
    times, values = synthetic_timeline([20.0, 60.0])
    report = detect(
        times, values,
        resilience_windows=[("degraded", 15.0, 25.0),
                            ("load-shed", 18.0, 23.0)],
    )
    assert report.spike_count == 2
    guarded, bare = report.spikes
    assert guarded.resilience == ["degraded", "load-shed"]
    assert bare.resilience == []


def test_spike_attribution_from_dict_backfills_resilience():
    times, values = synthetic_timeline([20.0])
    (spike,) = detect(times, values,
                      resilience_windows=[("degraded", 15.0, 25.0)]).spikes
    data = spike.to_dict()
    assert data["resilience"] == ["degraded"]
    revived = SpikeAttribution.from_dict(data)
    assert revived.resilience == ["degraded"]
    # records written before the field existed load with an empty list
    data.pop("resilience")
    assert SpikeAttribution.from_dict(data).resilience == []


# ----------------------------------------------------------------------
# scenario-library sampling
# ----------------------------------------------------------------------


def test_library_soak_samples_per_seed_and_records_names():
    from repro.scenarios import SOAK_POOL, sample_scenario

    report = short_soak(kind="library", seeds=(1, 2))
    assert report.kind == "library"
    expected = [sample_scenario(s).name for s in (1, 2)]
    assert report.scenarios == expected
    assert set(report.scenarios) <= set(SOAK_POOL)
    for run, name in zip(report.runs, expected):
        assert run["scenario"] == name
        assert run["label"] == f"soak-{name}-seed{run['seed']}"
    assert report.ok


def test_pinned_scenario_soak_uses_that_scenario():
    report = short_soak(kind="baseline_wordcount", seeds=(3,))
    assert report.scenarios == ["baseline_wordcount"]
    (run,) = report.runs
    assert run["scenario"] == "baseline_wordcount"
    assert run["ok"]


def test_legacy_kind_soak_keeps_empty_scenario_names():
    report = short_soak()
    assert report.scenarios == [""]
    (run,) = report.runs
    assert run["scenario"] == ""


def test_soak_rejects_unknown_kind():
    import pytest as _pytest

    from repro.errors import ConfigurationError

    with _pytest.raises(ConfigurationError):
        short_soak(kind="no-such-pipeline")


# ----------------------------------------------------------------------
# cluster soak: node-level chaos with the exactly-once audit
# ----------------------------------------------------------------------

CLUSTER_PLAN = {
    "name": "soak-node-crash",
    "faults": [
        {"kind": "node_crash", "at_s": 24.0, "duration_s": 4.0, "node": 0},
    ],
}


def test_cluster_soak_audits_exactly_once_per_window():
    # recovery_ratio 3 tolerates the background compaction-debt creep
    # these near-saturated scenarios accumulate even unfaulted, while a
    # crash spike (~6 s p99.9) would still have to drain to pass
    report = short_soak(kind="baseline_traffic", faults=CLUSTER_PLAN,
                        cluster=True, recovery_ratio=3.0)
    assert report.ok
    (run,) = report.runs
    (window,) = run["windows"]
    assert window["label"] == "node_crash"
    assert window["exactly_once"] is True
    assert window["recovered_at"] is not None
    assert run["migrations"] >= 1
    assert run["ownership_flips"] >= 1


def test_cluster_soak_without_flag_ignores_node_faults_gracefully():
    # same plan on a plain (clusterless) run: node_crash degrades to a
    # worker crash, so the soak still passes without the cluster audit
    report = short_soak(faults=CLUSTER_PLAN)
    assert report.ok
    (run,) = report.runs
    assert run["migrations"] == 0
    assert run["ownership_flips"] == 0


def test_random_cluster_soak_widens_the_kind_pool():
    # seed 3 draws node-level fault kinds from the widened pool (probed)
    report = short_soak(kind="baseline_traffic", faults="combined",
                        random_faults=True, cluster=True, seeds=(3,),
                        recovery_ratio=4.0, queue_limit_messages=600_000.0)
    assert report.ok
    (run,) = report.runs
    kinds = {k for w in run["windows"] for k in w["label"].split("+")}
    from repro.faults import ALL_FAULT_KINDS, CLUSTER_FAULT_KINDS
    assert kinds <= set(ALL_FAULT_KINDS)
    assert kinds & set(CLUSTER_FAULT_KINDS)
