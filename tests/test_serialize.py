"""Tests for the unified serialization protocol (repro.serialize)."""

import json

import pytest

from repro.analysis.overlap import OverlapReport
from repro.experiments.runner import ExperimentSettings
from repro.experiments.summary import RunSummary
from repro.metrics.collector import CheckpointStats
from repro.serialize import from_dict, registered, roundtrip, to_dict


def json_round(obj):
    """The exact transformation a cache/file round trip applies."""
    return json.loads(json.dumps(to_dict(obj)))


def test_checkpoint_stats_round_trip():
    stats = CheckpointStats(3, 24.0)
    stats.flush_count = {"s0": 64, "s1": 64}
    stats.flush_ms = {"s0": 81.5}
    stats.compaction_count = {"s0": 16}
    stats.compaction_ms = {"s0": 412.0}
    stats.compaction_input_mb = 512.5
    revived = from_dict(CheckpointStats, json_round(stats))
    assert revived.to_dict() == stats.to_dict()
    # the legacy spelling stays available and identical
    assert stats.as_dict() == stats.to_dict()


def test_overlap_report_round_trip():
    report = OverlapReport((40.0, 200.0))
    report.flush_compaction_overlap_s = 12.5
    report.flush_busy_s = 30.0
    report.compaction_busy_s = 50.0
    report.peak_flush_concurrency = 128
    report.peak_compaction_concurrency = 64
    revived = from_dict("OverlapReport", json_round(report))
    assert revived.to_dict() == report.to_dict()
    # overlap_fraction is derived, not stored state
    assert revived.overlap_fraction == pytest.approx(12.5 / 50.0)


def test_experiment_settings_round_trip():
    settings = ExperimentSettings(duration_s=80.0, seed=9, trace=True)
    assert roundtrip(settings) == settings
    assert from_dict("ExperimentSettings", json_round(settings)) == settings


def test_run_summary_round_trip():
    summary = RunSummary(
        kind="wordcount",
        label="x",
        tails={"p999": 1.5},
        per_checkpoint_compactions={0: {"count": 3}},
        trace_schema=1,
        trace_events=[{"name": "e", "cat": "flush", "ph": "i", "ts": 1.0,
                       "dur": 0.0, "tid": "", "args": {}}],
    )
    revived = from_dict(RunSummary, json_round(summary))
    assert revived == summary
    # JSON stringifies the int keys; from_dict must restore them
    assert 0 in revived.per_checkpoint_compactions


def test_registry_knows_the_protocol_classes():
    for name, cls in (
        ("CheckpointStats", CheckpointStats),
        ("OverlapReport", OverlapReport),
        ("ExperimentSettings", ExperimentSettings),
        ("RunSummary", RunSummary),
    ):
        assert registered(name) is cls
    with pytest.raises(KeyError):
        registered("NoSuchClass")


def test_plain_dataclass_fallback():
    import dataclasses

    @dataclasses.dataclass
    class Point:
        x: int = 0
        y: int = 0

    assert to_dict(Point(1, 2)) == {"x": 1, "y": 2}
    assert from_dict(Point, {"x": 3, "y": 4, "junk": 5}) == Point(3, 4)


def test_unsupported_objects_raise():
    with pytest.raises(TypeError):
        to_dict(object())
    with pytest.raises(TypeError):
        from_dict(object, {})
