"""Property-based fault harness: any seeded random :class:`FaultPlan`
must leave the invariants intact and the run measurable.

The property checked for every plan:

* the run terminates (the simulator reaches ``DURATION`` or aborts with
  an explicit reason — it never hangs);
* no runtime invariant fires (exactly-once accounting, monotonic
  watermarks, checkpoint-barrier legality, LSM consistency);
* the post-fault latency tail is finite — faults may make p50 terrible,
  but never NaN/inf/absent.

On a violation the harness shrinks the plan with
:func:`repro.faults.shrink_failing` and fails with the *minimal*
reproducing plan as JSON, so the culprit fault can be pasted straight
into ``repro run --faults '<json>'``.

A handful of seeds run in tier 1; the wide sweep is ``-m slow`` and
runs in the CI ``faults-smoke`` job.
"""

import json
import math

import pytest

from repro.config import CheckpointConfig, ClusterConfig
from repro.faults import FaultPlan, shrink_failing
from repro.stream.engine import StreamJob
from repro.stream.sources import ConstantSource
from repro.stream.stage import StageSpec

DURATION = 40.0
FAST_SEEDS = (1, 7, 23, 104)
SLOW_SEEDS = tuple(seed for seed in range(40) if seed not in FAST_SEEDS)


def build_job(seed, plan):
    return StreamJob(
        stages=[
            StageSpec(name="a", parallelism=2, state_entry_bytes=600.0,
                      distinct_keys=3000, selectivity=0.5),
            StageSpec(name="b", parallelism=2, state_entry_bytes=400.0,
                      distinct_keys=1500, selectivity=0.0),
        ],
        source=ConstantSource(1500.0),
        cluster=ClusterConfig(num_nodes=2, cores_per_node=4),
        checkpoint=CheckpointConfig(interval_s=4.0, first_at_s=4.0),
        seed=seed,
        faults=plan,
    )


def violations_of(seed, plan):
    """Run *plan* and return a list of human-readable property failures."""
    job = build_job(seed, plan)
    result = job.run(DURATION)
    problems = [
        f"invariant {v.invariant} at t={v.time:.3f}: {v.message}"
        for v in job.invariant_checker.violations
    ]
    if job.sim.aborted:
        problems.append(f"aborted: {job.sim.abort_reason}")
    tail = result.tail_summary(start=DURATION * 0.5)
    p50 = tail.get("p50")
    if p50 is None or not math.isfinite(p50):
        problems.append(f"non-finite p50: {p50!r}")
    return problems


def check_property(seed):
    plan = FaultPlan.random(seed=seed, duration_s=DURATION, nodes=2)
    problems = violations_of(seed, plan)
    if not problems:
        return

    def still_fails(candidate):
        return bool(violations_of(seed, candidate))

    minimal = shrink_failing(plan, still_fails)
    pytest.fail(
        f"seed {seed}: property violated: {problems}\n"
        f"minimal reproducing plan:\n"
        f"{json.dumps(minimal.to_dict(), indent=2, sort_keys=True)}"
    )


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_random_fault_plans_keep_invariants_fast(seed):
    check_property(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_random_fault_plans_keep_invariants_sweep(seed):
    check_property(seed)


def test_shrink_report_names_the_culprit():
    """The shrink-and-report path itself works: a plan that 'fails'
    whenever it stalls compaction shrinks to just that fault."""
    plan = FaultPlan.random(seed=5, duration_s=DURATION, max_faults=3,
                            kinds=("compaction_stall", "flush_stall",
                                   "slow_disk"))
    spiked = FaultPlan(
        name=plan.name,
        faults=plan.faults + (
            plan.faults[0].__class__(kind="worker_crash", at_s=15.0,
                                     duration_s=2.0, node=0),
        ),
    )

    def still_fails(candidate):
        return any(fault.kind == "worker_crash" for fault in candidate)

    minimal = shrink_failing(spiked, still_fails)
    assert [fault.kind for fault in minimal] == ["worker_crash"]
