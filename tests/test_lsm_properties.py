"""Property-based tests (hypothesis) for the LSM store.

The store must behave exactly like a dict regardless of how flushes and
compactions interleave with writes — the core LSM correctness property
the timing study relies on.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lsm import KiB, LSMOptions, LSMStore, SSTable, TOMBSTONE, merge_tables

KEYS = st.integers(min_value=0, max_value=40).map(lambda i: f"k{i:02d}".encode())
VALUES = st.binary(min_size=0, max_size=12)

# An operation stream: puts, deletes, flushes, compactions.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), KEYS, VALUES),
        st.tuples(st.just("delete"), KEYS, st.just(b"")),
        st.tuples(st.just("flush"), st.just(b""), st.just(b"")),
        st.tuples(st.just("compact"), st.just(b""), st.just(b"")),
    ),
    min_size=1,
    max_size=120,
)


def run_ops(store, ops):
    model = {}
    now = 0.0
    for op, key, value in ops:
        now += 1.0
        if op == "put":
            store.put(key, value)
            model[key] = value
        elif op == "delete":
            store.delete(key)
            model.pop(key, None)
        elif op == "flush":
            job = store.begin_flush(now=now)
            if job is not None:
                store.finish_flush(job, now=now)
        elif op == "compact":
            job = store.pick_compaction(now=now)
            if job is not None:
                store.finish_compaction(job, now=now)
    return model


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_store_matches_dict_model(ops):
    store = LSMStore(
        LSMOptions(
            write_buffer_size=2 * KiB,
            l0_compaction_trigger=2,
            max_bytes_for_level_base=4 * KiB,
        ),
        "prop",
    )
    model = run_ops(store, ops)
    for key in {k for op, k, _ in ops if op in ("put", "delete")}:
        assert store.get(key) == model.get(key)
    assert dict(store.scan()) == model
    store.check_invariants()


@settings(max_examples=60, deadline=None)
@given(ops=OPS)
def test_drain_all_compactions_preserves_model(ops):
    store = LSMStore(
        LSMOptions(
            write_buffer_size=KiB,
            l0_compaction_trigger=2,
            max_bytes_for_level_base=2 * KiB,
        ),
        "prop2",
    )
    model = run_ops(store, ops)
    # flush everything, then compact until quiescent
    job = store.begin_flush(now=1000.0)
    if job is not None:
        store.finish_flush(job, now=1000.0)
    for round_ in range(50):
        compaction = store.pick_compaction(now=1000.0 + round_)
        if compaction is None:
            break
        store.finish_compaction(compaction, now=1000.0 + round_)
    store.check_invariants()
    assert dict(store.scan()) == model


@settings(max_examples=80, deadline=None)
@given(
    tables=st.lists(
        st.dictionaries(KEYS, st.one_of(VALUES, st.just(TOMBSTONE)), max_size=10),
        min_size=1,
        max_size=5,
    )
)
def test_merge_tables_equals_layered_dict(tables):
    """Merging newest-first tables == applying them oldest-first."""
    sstables = [
        SSTable(sorted(t.items()), logical_bytes=100, level=0) for t in tables
    ]
    merged = merge_tables(sstables, drop_tombstones=False, level=1)
    expected = {}
    for table in reversed(tables):  # oldest first, newer overwrite
        expected.update(table)
    assert dict(iter(merged)) == expected
    # keys come out sorted
    keys = [k for k, _v in merged]
    assert keys == sorted(keys)


@settings(max_examples=80, deadline=None)
@given(
    tables=st.lists(
        st.dictionaries(KEYS, st.one_of(VALUES, st.just(TOMBSTONE)), max_size=10),
        min_size=1,
        max_size=5,
    )
)
def test_merge_with_tombstone_drop_removes_all_tombstones(tables):
    sstables = [
        SSTable(sorted(t.items()), logical_bytes=100, level=0) for t in tables
    ]
    merged = merge_tables(sstables, drop_tombstones=True, level=6)
    assert all(v is not TOMBSTONE for _k, v in merged)
