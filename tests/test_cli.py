"""Tests for the command-line interface."""

import json

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main


def test_every_figure_has_a_cli_name():
    expected = {
        "fig1", "fig3", "table1", "fig6", "fig7", "fig8", "fig12", "fig13",
        "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
        "headline",
    }
    assert set(EXPERIMENTS) == expected


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_fig8_renders_report(capsys):
    code = main(["run", "fig8", "--duration", "120", "--warmup", "40"])
    assert code == 0
    out = capsys.readouterr().out
    assert "== fig8 ==" in out
    assert "p99.9" in out
    assert "spike_period_s" in out


def test_run_table1_renders_table(capsys):
    code = main(["run", "table1", "--duration", "200", "--warmup", "40"])
    assert code == 0
    out = capsys.readouterr().out
    assert "flush s0/s1" in out
    assert "64/64" in out


def test_run_json_output(capsys):
    code = main(["run", "fig8", "--duration", "100", "--warmup", "40",
                 "--json"])
    assert code == 0
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert "spikes" in payload and "tails" in payload


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_run_succeeds_for_every_experiment(name, capsys):
    """Regression: sweep experiments crashed with TypeError when the CLI
    passed settings positionally into their sweep-list parameter."""
    code = main(["run", name, "--duration", "48", "--warmup", "16"])
    assert code == 0
    out = capsys.readouterr().out
    assert f"== {name} ==" in out


def test_run_sweep_with_jobs_flag(capsys):
    code = main(["run", "fig12", "--duration", "30", "--warmup", "10",
                 "--jobs", "2", "--no-cache"])
    assert code == 0
    out = capsys.readouterr().out
    assert "delay_s" in out


def test_compare_command(capsys):
    code = main(["compare", "--duration", "48", "--warmup", "16"])
    assert code == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "solution" in out
    assert "p99.9 reduced to" in out


def test_cache_info_and_clear(capsys, tmp_path, monkeypatch):
    from repro.experiments.parallel import CACHE_DIR_ENV

    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cli-cache"))
    assert main(["run", "fig16", "--duration", "48", "--warmup", "16"]) == 0
    capsys.readouterr()

    assert main(["cache", "info"]) == 0
    out = capsys.readouterr().out
    assert "entries: 2" in out

    assert main(["cache", "clear"]) == 0
    out = capsys.readouterr().out
    assert "removed 2" in out


def test_unknown_experiment_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_trace_command_writes_trace_and_report(capsys, tmp_path):
    out_path = tmp_path / "fig8.trace.jsonl"
    code = main(["trace", "fig8", "--duration", "70", "--warmup", "30",
                 "--out", str(out_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "millibottleneck report" in out
    assert "attributed" in out
    assert out_path.exists()
    from repro.trace import read_jsonl

    events = read_jsonl(out_path)
    assert any(e.ph == "X" and e.cat == "flush" for e in events)
    assert any(e.cat == "latency" for e in events)


def test_trace_command_chrome_format(capsys, tmp_path):
    out_path = tmp_path / "fig8.trace.json"
    code = main(["trace", "fig8", "--duration", "70", "--warmup", "30",
                 "--chrome", "--out", str(out_path)])
    assert code == 0
    doc = json.loads(out_path.read_text())
    assert "traceEvents" in doc and doc["traceEvents"]


def test_run_with_trace_flag(capsys):
    code = main(["run", "fig8", "--duration", "70", "--warmup", "30",
                 "--trace"])
    assert code == 0
    assert "== fig8 ==" in capsys.readouterr().out


# ----------------------------------------------------------------------
# the scenario subcommands
# ----------------------------------------------------------------------


def test_scenarios_list_renders_the_catalog(capsys):
    from repro.scenarios import scenario_names

    assert main(["scenarios", "list"]) == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out
    assert "soak pool" in out


def test_scenarios_list_json(capsys):
    from repro.scenarios import scenario_names

    assert main(["scenarios", "list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert sorted(payload) == scenario_names()
    assert payload["windowed_join"]["app"] == "join"


def test_scenarios_show_prints_spec_and_cache_key(capsys):
    assert main(["scenarios", "show", "windowed_join"]) == 0
    out = capsys.readouterr().out
    assert "windowed_join" in out and "cache key" in out
    assert '"app": "join"' in out


def test_scenarios_show_json_roundtrips(capsys):
    from repro.scenarios import ScenarioSpec, scenario

    assert main(["scenarios", "show", "multi_tenant", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert ScenarioSpec.from_dict(payload["spec"]) == scenario("multi_tenant")
    assert len(payload["cache_key"]) == 64


def test_scenarios_show_requires_a_name(capsys):
    assert main(["scenarios", "show"]) == 2
    assert "needs a scenario name" in capsys.readouterr().err


def test_scenarios_show_unknown_name(capsys):
    assert main(["scenarios", "show", "nope"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_run_scenario_command(capsys):
    code = main(["run", "--scenario", "baseline_traffic",
                 "--duration", "30", "--warmup", "10"])
    assert code == 0
    out = capsys.readouterr().out
    assert "== scenario baseline_traffic ==" in out
    assert "p99.9" in out


def test_run_scenario_json_records_the_name(capsys):
    code = main(["run", "--scenario", "baseline_traffic",
                 "--duration", "30", "--warmup", "10", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "scenario"
    assert payload["scenario"] == "baseline_traffic"


def test_run_scenario_with_faults(capsys):
    code = main(["run", "--scenario", "baseline_traffic",
                 "--duration", "40", "--warmup", "10",
                 "--faults", "crash"])
    assert code == 0


def test_run_rejects_experiment_plus_scenario(capsys):
    assert main(["run", "fig8", "--scenario", "baseline_traffic"]) == 2
    assert "not both" in capsys.readouterr().err


def test_run_requires_experiment_or_scenario(capsys):
    assert main(["run"]) == 2
    assert "--scenario" in capsys.readouterr().err


def test_run_unknown_scenario(capsys):
    assert main(["run", "--scenario", "nope"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_scenarios_show_unknown_name_suggests_close_match(capsys):
    assert main(["scenarios", "show", "elastic_scal"]) == 2
    err = capsys.readouterr().err
    assert "did you mean" in err
    assert "elastic_scale" in err


def test_run_unknown_scenario_suggests_close_match(capsys):
    assert main(["run", "--scenario", "baseline_trafic"]) == 2
    err = capsys.readouterr().err
    assert "did you mean" in err
    assert "baseline_traffic" in err


def test_cluster_show_renders_spec(capsys):
    assert main(["cluster", "show"]) == 0
    out = capsys.readouterr().out
    assert "== cluster spec of elastic_scale ==" in out
    assert "phi threshold" in out
    assert "join" in out and "leave" in out


def test_cluster_show_json_roundtrips(capsys):
    assert main(["cluster", "show", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [e["action"] for e in payload["events"]] == ["join", "leave"]
    assert payload["phi_threshold"] > 0


def test_cluster_rejects_scenarios_without_a_cluster_layer(capsys):
    assert main(["cluster", "show", "baseline_traffic"]) == 2
    assert "no cluster layer" in capsys.readouterr().err


def test_cluster_rejects_unknown_scenario(capsys):
    assert main(["cluster", "show", "nope"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_cluster_run_audits_and_passes(capsys):
    code = main(["cluster", "run", "--duration", "90", "--warmup", "20",
                 "--no-cache"])
    assert code == 0
    out = capsys.readouterr().out
    assert "== cluster run: elastic_scale ==" in out
    assert "cluster audit: PASS" in out
    assert "rebalance:scale-out:+4" in out


def test_cluster_run_json(capsys):
    code = main(["cluster", "run", "--duration", "90", "--warmup", "20",
                 "--no-cache", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scenario"] == "elastic_scale"
    assert payload["invariant_violations"] == []
    assert payload["cluster"]["unowned_partitions"] == []
