#!/usr/bin/env python3
"""Regenerate tests/data/trace_golden.jsonl after a deliberate schema change.

Run from the repository root:

    PYTHONPATH=src python tests/make_trace_golden.py
"""

from pathlib import Path

from test_trace import traced_pool_run

if __name__ == "__main__":
    out = Path(__file__).parent / "data" / "trace_golden.jsonl"
    out.parent.mkdir(exist_ok=True)
    traced_pool_run().write_jsonl(out)
    print(f"wrote {out}")
