"""Unit tests for the event queue primitives."""


from repro.sim.events import (
    EventQueue,
    HIGH_PRIORITY,
    LOW_PRIORITY,
    NORMAL_PRIORITY,
)


def test_pop_returns_events_in_time_order():
    queue = EventQueue()
    fired = []
    queue.push(3.0, lambda: fired.append(3))
    queue.push(1.0, lambda: fired.append(1))
    queue.push(2.0, lambda: fired.append(2))
    while queue:
        queue.pop().callback()
    assert fired == [1, 2, 3]


def test_same_time_events_fire_in_scheduling_order():
    queue = EventQueue()
    order = []
    for i in range(5):
        queue.push(1.0, lambda i=i: order.append(i))
    while queue:
        queue.pop().callback()
    assert order == [0, 1, 2, 3, 4]


def test_priority_overrides_scheduling_order_at_equal_times():
    queue = EventQueue()
    order = []
    queue.push(1.0, lambda: order.append("normal"), priority=NORMAL_PRIORITY)
    queue.push(1.0, lambda: order.append("low"), priority=LOW_PRIORITY)
    queue.push(1.0, lambda: order.append("high"), priority=HIGH_PRIORITY)
    while queue:
        queue.pop().callback()
    assert order == ["high", "normal", "low"]


def test_cancelled_event_is_skipped():
    queue = EventQueue()
    fired = []
    keep = queue.push(1.0, lambda: fired.append("keep"))
    drop = queue.push(0.5, lambda: fired.append("drop"))
    drop.cancel()
    while queue:
        queue.pop().callback()
    assert fired == ["keep"]
    assert drop.cancelled and not keep.cancelled


def test_len_tracks_cancellations():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(4)]
    assert len(queue) == 4
    events[1].cancel()
    events[1].cancel()  # double-cancel must not double-decrement
    assert len(queue) == 3
    queue.discard(events[2])
    assert len(queue) == 2


def test_peek_time_skips_cancelled_heads():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    first.cancel()
    assert queue.peek_time() == 2.0


def test_pop_empty_returns_none():
    queue = EventQueue()
    assert queue.pop() is None
    assert queue.peek_time() is None
    assert not queue


def test_event_carries_args():
    queue = EventQueue()
    seen = []
    queue.push(1.0, lambda a, b: seen.append((a, b)), args=(1, "x"))
    event = queue.pop()
    event.callback(*event.args)
    assert seen == [(1, "x")]
