"""Unit tests for the event queue primitives."""


from repro.sim.events import (
    EventQueue,
    HIGH_PRIORITY,
    LOW_PRIORITY,
    NORMAL_PRIORITY,
)


def test_pop_returns_events_in_time_order():
    queue = EventQueue()
    fired = []
    queue.push(3.0, lambda: fired.append(3))
    queue.push(1.0, lambda: fired.append(1))
    queue.push(2.0, lambda: fired.append(2))
    while queue:
        queue.pop().callback()
    assert fired == [1, 2, 3]


def test_same_time_events_fire_in_scheduling_order():
    queue = EventQueue()
    order = []
    for i in range(5):
        queue.push(1.0, lambda i=i: order.append(i))
    while queue:
        queue.pop().callback()
    assert order == [0, 1, 2, 3, 4]


def test_priority_overrides_scheduling_order_at_equal_times():
    queue = EventQueue()
    order = []
    queue.push(1.0, lambda: order.append("normal"), priority=NORMAL_PRIORITY)
    queue.push(1.0, lambda: order.append("low"), priority=LOW_PRIORITY)
    queue.push(1.0, lambda: order.append("high"), priority=HIGH_PRIORITY)
    while queue:
        queue.pop().callback()
    assert order == ["high", "normal", "low"]


def test_cancelled_event_is_skipped():
    queue = EventQueue()
    fired = []
    keep = queue.push(1.0, lambda: fired.append("keep"))
    drop = queue.push(0.5, lambda: fired.append("drop"))
    drop.cancel()
    while queue:
        queue.pop().callback()
    assert fired == ["keep"]
    assert drop.cancelled and not keep.cancelled


def test_len_tracks_cancellations():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(4)]
    assert len(queue) == 4
    events[1].cancel()
    events[1].cancel()  # double-cancel must not double-decrement
    assert len(queue) == 3
    queue.discard(events[2])
    assert len(queue) == 2


def test_peek_time_skips_cancelled_heads():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    first.cancel()
    assert queue.peek_time() == 2.0


def test_pop_empty_returns_none():
    queue = EventQueue()
    assert queue.pop() is None
    assert queue.peek_time() is None
    assert not queue


def test_event_carries_args():
    queue = EventQueue()
    seen = []
    queue.push(1.0, lambda a, b: seen.append((a, b)), args=(1, "x"))
    event = queue.pop()
    event.callback(*event.args)
    assert seen == [(1, "x")]


def test_lifo_tie_break_reverses_equal_time_order():
    queue = EventQueue(tie_break="lifo")
    order = []
    for i in range(5):
        queue.push(1.0, lambda i=i: order.append(i))
    while queue:
        queue.pop().callback()
    assert order == [4, 3, 2, 1, 0]


def test_cancellation_heavy_heap_compacts():
    """When dead entries outnumber live ones past COMPACT_MIN, the heap
    is compacted in place and stays O(live)."""
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(2000)]
    assert len(queue._heap) == 2000
    # Cancel 3/4 of the events: crossing the live*2 < heap threshold
    # must shrink the physical heap, not just mark entries dead.
    for event in events[::2]:
        event.cancel()
    for event in events[1::4]:
        event.cancel()
    assert queue.compactions >= 1
    assert len(queue) == 500
    # The physical heap stays within 2x the live count (the compaction
    # threshold), never O(total pushed).
    assert len(queue._heap) <= 2 * len(queue)
    # Survivors still pop in time order.
    times = []
    while queue:
        times.append(queue.pop().time)
    assert times == sorted(times) and len(times) == 500


def test_small_heaps_never_compact():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(100)]
    for event in events:
        event.cancel()
    assert queue.compactions == 0
    assert len(queue) == 0 and queue.pop() is None


def test_compaction_preserves_heap_list_identity():
    """Run loops hold a direct reference to the heap list; compaction
    must mutate it in place."""
    queue = EventQueue()
    heap_ref = queue._heap
    events = [queue.push(float(i), lambda: None) for i in range(1024)]
    for event in events[:-1]:
        event.cancel()
    assert queue._heap is heap_ref
    assert queue.pop() is events[-1]


def test_live_accounting_survives_compaction_and_pops():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(1500)]
    for event in events[:1200]:
        event.cancel()
    assert len(queue) == 300
    popped = 0
    while queue.pop() is not None:
        popped += 1
    assert popped == 300 and len(queue) == 0 and not queue


def test_peek_time_sweeps_many_cancelled_heads():
    queue = EventQueue()
    doomed = [queue.push(float(i), lambda: None) for i in range(50)]
    survivor = queue.push(99.0, lambda: None)
    for event in doomed:
        event.cancel()
    assert queue.peek_time() == 99.0
    assert queue.pop() is survivor
    assert queue.peek_time() is None


def test_cancel_after_pop_does_not_corrupt_live_count():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    other = queue.push(2.0, lambda: None)
    assert queue.pop() is event
    # Cancelling an already-popped handle flips its flag (callers may
    # hold stale handles) but must not touch the queue's live count.
    event.cancel()
    assert event.cancelled
    assert len(queue) == 1
    assert queue.pop() is other
    assert len(queue) == 0
