"""Setup shim; metadata lives in pyproject.toml.

Kept so editable installs work on environments whose setuptools lacks
PEP 660 wheel support (`python setup.py develop` / pip fallback).
"""
from setuptools import setup

setup()
