#!/usr/bin/env python3
"""Other sources of ShadowSync (§6): JVM GC pauses and DVFS throttling.

The paper's discussion predicts that *any* recurrent asynchronous event
— garbage collection, frequency scaling, noisy neighbours — can form
the same hidden synchronization with checkpoints.  This example injects
GC pauses and DVFS throttling — periodic and Poisson capacity dips
spawned with :func:`repro.faults.capacity.capacity_dip` — into the
fully-mitigated traffic job and shows a new latency tail appearing that
the LSM-level mitigations (by design) cannot remove.

Run:  python examples/other_shadowsync_sources.py
"""

import math

from repro.api import MitigationPlan, build_traffic_job, render_tails
from repro.faults.capacity import capacity_dip
from repro.sim.process import spawn

RUN, WARMUP = 200.0, 40.0


def gc_pauses(job, windows, interval_s=17.3, pause_s=0.35, jitter=0.3,
              first_at_s=5.0):
    """Periodic stop-the-world pauses on every node, with jitter."""
    sim = job.sim

    def loop(node):
        rng = sim.rng.stream(f"gc/{node.name}")
        yield first_at_s
        while True:
            spawn(sim, capacity_dip(sim, node.cpu, 0.0, pause_s,
                                    windows=windows))
            wait = interval_s * (1.0 + jitter * (2.0 * rng.random() - 1.0))
            yield max(wait, pause_s)

    for node in job.nodes:
        spawn(sim, loop(node), name=f"gc-injector-{node.name}")


def dvfs_throttling(job, windows, mean_interval_s=25.0, duration_s=0.6,
                    frequency_factor=0.6, first_at_s=3.0):
    """Poisson-arriving reduced-frequency windows on every node."""
    sim = job.sim

    def loop(node):
        rng = sim.rng.stream(f"dvfs/{node.name}")
        yield first_at_s
        while True:
            spawn(sim, capacity_dip(sim, node.cpu, frequency_factor,
                                    duration_s, windows=windows))
            yield max(-mean_interval_s * math.log(1.0 - rng.random()),
                      duration_s)

    for node in job.nodes:
        spawn(sim, loop(node), name=f"dvfs-injector-{node.name}")


def run(name, *injectors):
    job = build_traffic_job(
        checkpoint_interval_s=8.0,
        initial_l0="aligned",
        seed=1,
        mitigation=MitigationPlan.paper_solution(),
    )
    windows = []
    for injector in injectors:
        injector(job, windows)
    result = job.run(RUN)
    print(f"{name}: {len(windows)} disturbance windows injected")
    return result.tail_summary(start=WARMUP)


def main():
    print("mitigated traffic job (randomized trigger + 1 s delay) under §6 "
          "disturbances\n")
    tails = {
        "quiet": run("quiet"),
        "gc-pauses": run("gc-pauses", gc_pauses),
        "gc+dvfs": run("gc+dvfs", gc_pauses, dvfs_throttling),
    }
    print()
    print(render_tails(tails))
    print(
        "\nThe LSM mitigations keep the flush/compaction tail away, but the\n"
        "injected pauses create a new one — §6's point that ShadowSync is a\n"
        "general phenomenon of recurrent asynchronous events, not a RocksDB\n"
        "quirk."
    )


if __name__ == "__main__":
    main()
