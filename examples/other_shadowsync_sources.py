#!/usr/bin/env python3
"""Other sources of ShadowSync (§6): JVM GC pauses and DVFS throttling.

The paper's discussion predicts that *any* recurrent asynchronous event
— garbage collection, frequency scaling, noisy neighbours — can form
the same hidden synchronization with checkpoints.  This example injects
GC pauses and DVFS throttling into the fully-mitigated traffic job and
shows a new latency tail appearing that the LSM-level mitigations (by
design) cannot remove.

Run:  python examples/other_shadowsync_sources.py
"""

from repro.api import (
    DvfsThrottleInjector,
    GcPauseInjector,
    MitigationPlan,
    build_traffic_job,
    render_tails,
)

RUN, WARMUP = 200.0, 40.0


def run(name, disturbances):
    job = build_traffic_job(
        checkpoint_interval_s=8.0,
        initial_l0="aligned",
        seed=1,
        mitigation=MitigationPlan.paper_solution(),
    )
    for disturbance in disturbances:
        for node in job.nodes:
            disturbance.install(job.sim, node.cpu)
        if hasattr(disturbance, "note_checkpoint"):
            job.coordinator.on_trigger.append(disturbance.note_checkpoint)
    result = job.run(RUN)
    windows = sum(len(d.windows) for d in disturbances)
    print(f"{name}: {windows} disturbance windows injected")
    return result.tail_summary(start=WARMUP)


def main():
    print("mitigated traffic job (randomized trigger + 1 s delay) under §6 "
          "disturbances\n")
    tails = {
        "quiet": run("quiet", []),
        "gc-pauses": run(
            "gc-pauses",
            [GcPauseInjector(interval_s=17.3, pause_s=0.35, jitter=0.3)],
        ),
        "gc+dvfs": run(
            "gc+dvfs",
            [
                GcPauseInjector(interval_s=17.3, pause_s=0.35, jitter=0.3),
                DvfsThrottleInjector(mean_interval_s=25.0, duration_s=0.6,
                                     frequency_factor=0.6),
            ],
        ),
    }
    print()
    print(render_tails(tails))
    print(
        "\nThe LSM mitigations keep the flush/compaction tail away, but the\n"
        "injected pauses create a new one — §6's point that ShadowSync is a\n"
        "general phenomenon of recurrent asynchronous events, not a RocksDB\n"
        "quirk."
    )


if __name__ == "__main__":
    main()
