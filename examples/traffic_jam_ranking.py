#!/usr/bin/env python3
"""The real-time traffic-jam ranking pipeline, data plane included.

Demonstrates the full stack the benchmark abstracts:

1. the synthetic Tokyo fleet (`TrafficModel`) emits one ~6 kB event per
   car per second;
2. events are produced into a partitioned Kafka topic and routed by key;
3. street objects aggregate car counts in a real LSM store (one store
   per street partition, flushed and compacted like RocksDB);
4. the city-wide top-10 jam ranking is computed from the stores;
5. finally the fluid benchmark reports what end-to-end latency this
   deployment would see under continuous checkpointing.

Run:  python examples/traffic_jam_ranking.py
"""

import json

from repro.api import LSMOptions, LSMStore, build_traffic_job
from repro.stream.kafka import KafkaBroker
from repro.workloads import TrafficModel

PARTITIONS = 8
TICKS = 5


def main():
    print("== data plane: cars -> kafka -> street stores -> ranking ==")
    model = TrafficModel(num_cars=2000, seed=7)
    broker = KafkaBroker()
    topic = broker.create_topic("car-events", partitions=PARTITIONS)

    # One LSM store per partition, standing in for one street-stage
    # instance's RocksDB.
    stores = [
        LSMStore(LSMOptions(), name=f"streets/{p}") for p in range(PARTITIONS)
    ]

    for tick in range(TICKS):
        model.tick(1.0)
        for record in model.events(timestamp=float(tick)):
            topic.produce(record)

    # Consume each partition, updating per-street car counts.
    for partition in topic.partitions:
        store = stores[partition.index]
        for record in partition.read(0, max_records=10**9):
            event = json.loads(record.value.decode().rstrip())
            street = event["street"].encode()
            current = store.get(street)
            count = int(current) + 1 if current else 1
            store.put(street, str(count).encode())
        flush = store.begin_flush(now=0.0)
        if flush is not None:
            store.finish_flush(flush, now=0.0)

    # City-wide top-10 jam ranking (stage s2's job).
    densities = {}
    for store in stores:
        for street, count in store.scan():
            densities[street] = densities.get(street, 0) + int(count)
    ranking = sorted(densities.items(), key=lambda kv: -kv[1])[:10]
    print(f"events produced: {topic.total_records()}, streets: {len(densities)}")
    print("top-10 jammed streets (street, observations):")
    for street, count in ranking:
        print(f"  {street.decode():24s} {count}")

    print("\n== control plane: what latency does this cost? ==")
    job = build_traffic_job(checkpoint_interval_s=8.0, initial_l0="aligned", seed=1)
    result = job.run(120.0)
    tails = result.tail_summary(start=40.0)
    print(
        "baseline tails: "
        + "  ".join(f"{k}={v:.2f}s" for k, v in tails.items())
    )
    print(f"flushes: {len(result.flush_spans())}, "
          f"compactions: {len(result.compaction_spans())}")


if __name__ == "__main__":
    main()
