#!/usr/bin/env python3
"""The operator's playbook: detect ShadowSync, derive the fixes, verify.

This example runs the paper's diagnostic/remediation loop end to end:

1. run the baseline and let the :class:`ShadowSyncDetector` classify the
   latency spikes (millibottlenecks + flush/compaction overlap);
2. derive every mitigation parameter *from measurements*:
   the compaction delay from the drain-out formula T = λ·Δt / C (Eq. 2),
   flush threads from the core count (§4.2.1), and compaction threads
   from the Kneedle knee of the latency-vs-concurrency curve (§4.2.2);
3. apply the derived plan and confirm the long tail is gone.

Run:  python examples/tuning_playbook.py
"""

import numpy as np

from repro.api import (
    MitigationPlan,
    ShadowSyncDetector,
    build_traffic_job,
    estimate_drain_time,
    recommend_compaction_threads,
    recommend_flush_threads,
    render_tails,
)
from repro.core import concurrency_latency_curve

WARMUP, RUN = 40.0, 240.0


def main():
    print("step 1: run the baseline and diagnose")
    job = build_traffic_job(checkpoint_interval_s=8.0, initial_l0="aligned", seed=1)
    result = job.run(RUN)
    times, p999 = result.latency_timeline(0.999, window=0.25, start=WARMUP)

    detector = ShadowSyncDetector()
    finding = detector.analyze(
        spans=result.spans,
        cpu_series=result.cpu_series("node0"),
        cpu_capacity=16.0,
        latency_times=times,
        latency_values=p999,
        checkpoint_times=result.coordinator.checkpoint_times(),
        stages=["s0", "s1"],
        window=(WARMUP, RUN),
    )
    print(f"  spikes found: {len(finding.spikes)}  "
          f"matched to millibottlenecks: {finding.spike_match_fraction:.0%}")
    print(f"  flush/compaction overlap: {finding.overlap_seconds:.1f}s  "
          f"alignment: {finding.alignment:.2f}")
    print(f"  verdict: {finding.classification} ShadowSync, "
          f"spike period ~{finding.spike_period_s:.0f}s")

    print("\nstep 2: derive the mitigation parameters from measurements")
    # Eq. 2: λ per node, flush-phase duration, drain rate once unblocked.
    flushes = result.flush_spans(window=(WARMUP, RUN))
    phase = max(f.end for f in flushes[:129]) - min(f.start for f in flushes[:129])
    delay = estimate_drain_time(
        arrival_rate=15000.0, flush_duration=phase,
        drain_rate=5000.0, blocked_fraction=0.5,
    )
    flush_threads = recommend_flush_threads(cores_per_node=16)
    # Kneedle needs varied concurrency; use a randomized-trigger run.
    probe = build_traffic_job(
        checkpoint_interval_s=8.0, initial_l0="aligned", seed=1,
        mitigation=MitigationPlan(randomize_compaction_trigger=True),
    ).run(RUN)
    wt, wl = probe.latency_timeline(0.999, window=0.05, start=WARMUP)
    ct, cc = probe.concurrency("compaction", WARMUP, RUN, dt=0.05)
    levels, means = concurrency_latency_curve(wt, wl, ct, np.floor(cc / 4.0),
                                              min_windows=5)
    compaction_threads = recommend_compaction_threads(levels, means)
    print(f"  drain-time delay (Eq. 2): {delay:.2f}s")
    print(f"  flush threads (= cores): {flush_threads}")
    print(f"  compaction threads (Kneedle knee): {compaction_threads}")

    print("\nstep 3: apply and verify")
    plan = MitigationPlan(
        randomize_compaction_trigger=True,
        compaction_delay_s=round(delay, 1),
        flush_threads=flush_threads,
        compaction_threads=compaction_threads,
    )
    tuned = build_traffic_job(
        checkpoint_interval_s=8.0, initial_l0="aligned", seed=1, mitigation=plan
    ).run(RUN)
    tails = {
        "baseline": result.tail_summary(start=WARMUP),
        "tuned": tuned.tail_summary(start=WARMUP),
    }
    print(render_tails(tails))
    print(f"\np99.9 reduced to "
          f"{tails['tuned']['p999'] / tails['baseline']['p999']:.0%} of baseline")


if __name__ == "__main__":
    main()
