#!/usr/bin/env python3
"""Quickstart: see ShadowSync, then mitigate it.

Runs the paper's traffic-jam benchmark twice — baseline and with the
§4 mitigations — and prints the latency tails plus an ASCII p99.9
timeline, where the baseline's periodic spikes (every 4th checkpoint)
are plainly visible.

Run:  python examples/quickstart.py
"""

from repro.api import (
    MitigationPlan,
    build_traffic_job,
    render_series,
    render_tails,
)

RUN_SECONDS = 160.0
WARMUP = 40.0


def run(name, mitigation):
    job = build_traffic_job(
        checkpoint_interval_s=8.0,
        initial_l0="aligned",  # §3.3's statistical worst case
        mitigation=mitigation,
        seed=1,
    )
    result = job.run(RUN_SECONDS)
    times, p999 = result.latency_timeline(0.999, window=0.5, start=WARMUP)
    print()
    print(render_series(times.tolist(), p999.tolist(), label=f"{name}: p99.9 latency [s]"))
    return result.tail_summary(start=WARMUP)


def main():
    print("ShadowSync quickstart: 60k msg/s, 4 nodes x 16 cores, RocksDB on tmpfs")
    tails = {
        "baseline": run("baseline", None),
        "solution": run("solution (randomized trigger + 1s delay)",
                        MitigationPlan.paper_solution()),
    }
    print()
    print(render_tails(tails))
    ratio = tails["solution"]["p999"] / tails["baseline"]["p999"]
    print(f"\np99.9 reduced to {ratio:.0%} of baseline")


if __name__ == "__main__":
    main()
