#!/usr/bin/env python3
"""WordCount on the Kafka-Streams-like stack (§5.2), both planes.

Data plane: random Zipf sentences → topic → per-partition word counters
kept in real LSM stores (flushed/compacted), verified against a
reference reduction.  Control plane: the single-node fluid benchmark,
baseline vs mitigated, reproducing Figure 17's comparison.

Run:  python examples/wordcount_streams.py
"""

from repro.api import (
    LSMOptions,
    LSMStore,
    MitigationPlan,
    build_wordcount_job,
    render_tails,
)
from repro.stream.kafka import KafkaBroker
from repro.workloads import SentenceGenerator, count_words

PARTITIONS = 4
SENTENCES = 400


def main():
    print("== data plane: sentences -> kafka -> LSM word counters ==")
    generator = SentenceGenerator(vocabulary_size=500, seed=3)
    broker = KafkaBroker()
    topic = broker.create_topic("lines", partitions=PARTITIONS)
    records = list(generator.sentences(SENTENCES))
    for record in records:
        topic.produce(record)

    stores = [LSMStore(LSMOptions(), name=f"count/{p}") for p in range(PARTITIONS)]
    for partition in topic.partitions:
        store = stores[partition.index]
        for record in partition.read(0, max_records=10**9):
            for word in record.value.decode().split():
                key = word.encode()
                current = store.get(key)
                store.put(key, str(int(current) + 1 if current else 1).encode())
        flush = store.begin_flush(now=0.0)
        if flush is not None:
            store.finish_flush(flush, now=0.0)
        while True:
            compaction = store.pick_compaction(now=0.0)
            if compaction is None:
                break
            store.finish_compaction(compaction, now=0.0)

    counted = {}
    for store in stores:
        for word, count in store.scan():
            counted[word.decode()] = counted.get(word.decode(), 0) + int(count)
    reference = count_words(records)
    assert counted == reference, "LSM counts diverge from reference!"
    top = sorted(counted.items(), key=lambda kv: -kv[1])[:8]
    print(f"counted {sum(counted.values())} words, {len(counted)} distinct; "
          f"LSM counts == reference reduction")
    print("top words:", ", ".join(f"{w}={c}" for w, c in top))

    print("\n== control plane: Figure 17's comparison ==")
    tails = {}
    for name, plan in (("baseline", None), ("solution", MitigationPlan.paper_solution())):
        job = build_wordcount_job(seed=2, mitigation=plan)
        result = job.run(160.0)
        tails[name] = result.tail_summary(start=40.0)
    print(render_tails(tails))


if __name__ == "__main__":
    main()
