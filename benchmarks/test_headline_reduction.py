"""§5 headline claim: the mitigations reduce p99.9 to ≲20 % of the
baseline and p95 to <50 %.

Measured with the full plan (randomized trigger + drain-time delay +
§4.2 thread allocations).  Our simulator lands at ~22-30 % on p99.9
(see EXPERIMENTS.md): the residual is the flush stop-the-world stall,
which no §4 mitigation addresses, and whose relative weight is larger
here than on the authors' testbed.
"""

from repro.experiments import headline_reduction

from conftest import record


def test_headline(benchmark, settings):
    out = benchmark.pedantic(
        headline_reduction, args=(settings,), rounds=1, iterations=1
    )
    record("§5 headline", "p99.9 reduction", "<20%",
           f"{out['reduction_p999']:.0%}")
    record("§5 headline", "p95 reduction", "<50%",
           f"{out['reduction_p95']:.0%}")
    assert out["reduction_p999"] < 0.35
    assert out["reduction_p95"] < 0.50
    assert out["baseline"]["p999"] > 1.5
    assert out["mitigated"]["p999"] < 0.8
