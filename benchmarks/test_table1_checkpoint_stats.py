"""Table 1: per-checkpoint flush/compaction statistics.

Paper (150–220 s window, five checkpoints): 64-ish flushes per stage per
checkpoint; compaction bursts of exactly 64 hitting s1 at the 1st and
5th checkpoint and s0 at the 3rd; total compaction input of hundreds of
MB per burst.
"""

from repro.experiments import table1_checkpoint_stats

from conftest import record


def test_table1(benchmark, settings):
    out = benchmark.pedantic(
        table1_checkpoint_stats, args=(settings,), rounds=1, iterations=1
    )
    rows = out["rows"]
    assert len(rows) == 5

    burst_pattern = []
    for row in rows:
        s0 = row["compaction_count"].get("s0", 0)
        s1 = row["compaction_count"].get("s1", 0)
        if s0 >= 32:
            burst_pattern.append("s0")
        elif s1 >= 32:
            burst_pattern.append("s1")
        else:
            burst_pattern.append("-")
    record("Table 1", "burst pattern over 5 CPs", "s1,-,s0,-,s1",
           ",".join(burst_pattern))
    assert burst_pattern == ["s1", "-", "s0", "-", "s1"]

    for row in rows:
        for stage in ("s0", "s1"):
            assert row["flush_count"].get(stage, 0) == 64
    burst_sizes = [
        sum(r["compaction_count"].values())
        for r in rows
        if sum(r["compaction_count"].values()) >= 32
    ]
    record("Table 1", "compactions per burst", "64", str(burst_sizes))
    input_mb = [r["compaction_input_mb"] for r in rows if r["compaction_input_mb"] > 0]
    record("Table 1", "compaction input [MB]", "392-2029",
           f"{min(input_mb):.0f}-{max(input_mb):.0f}")
    assert all(size >= 64 for size in burst_sizes)
    assert min(input_mb) > 50
