"""Perf smoke: the parallel executor on a standard 6-point delay sweep.

Measures wall-clock of the Figure 12 sweep serial vs parallel vs
warm-cache, so ``BENCH_parallel_sweep.json`` tracks the executor's
trajectory across revisions.  The ≥ 3× speedup criterion only applies
on multi-core hardware; single-core boxes still check correctness and
the < 1 s warm-cache rerun.
"""

import json
import os
import time
from pathlib import Path

from repro.experiments.figures import DELAY_SWEEP_S
from repro.experiments.parallel import RunSpec, run_grid
from repro.core import MitigationPlan

from conftest import record

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel_sweep.json"


def _sweep_specs(settings):
    return [
        RunSpec(
            settings=settings,
            mitigation=MitigationPlan(
                randomize_compaction_trigger=True, compaction_delay_s=delay
            ),
            label=f"delay={delay:g}s",
        )
        for delay in DELAY_SWEEP_S
    ]


def test_parallel_sweep_perf(settings, tmp_path):
    specs = _sweep_specs(settings)
    cores = os.cpu_count() or 1
    jobs = min(8, cores)

    t0 = time.perf_counter()
    serial = run_grid(specs, jobs=1, cache=False)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_grid(specs, jobs=jobs, cache=False)
    t_parallel = time.perf_counter() - t0

    # Populate, then re-read: the warm path must be near-instant.
    cache_root = tmp_path / "bench-cache"
    run_grid(specs, jobs=1, cache=True, cache_directory=cache_root)
    t0 = time.perf_counter()
    warm = run_grid(specs, jobs=1, cache=True, cache_directory=cache_root)
    t_warm = time.perf_counter() - t0

    assert [s.to_dict() for s in parallel] == [s.to_dict() for s in serial]
    assert [s.to_dict() for s in warm] == [s.to_dict() for s in serial]
    assert t_warm < 1.0

    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    record("Perf", f"6-pt sweep serial [s] ({cores} cores)", "-",
           f"{t_serial:.2f}")
    record("Perf", f"6-pt sweep --jobs {jobs} [s]", "-", f"{t_parallel:.2f}")
    record("Perf", "speedup", ">= 3x on >= 8 cores", f"{speedup:.2f}x")
    record("Perf", "warm-cache rerun [s]", "< 1", f"{t_warm:.3f}")

    if cores >= 8:
        assert speedup >= 3.0

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "parallel_sweep",
        "sweep_points": len(specs),
        "duration_s": settings.duration_s,
        "cores": cores,
        "jobs": jobs,
        "serial_s": round(t_serial, 3),
        "parallel_s": round(t_parallel, 3),
        "speedup": round(speedup, 3),
        "warm_cache_s": round(t_warm, 4),
    }, indent=2) + "\n")
