"""Ablation: incremental vs full-snapshot checkpoints.

The paper's platform uses RocksDB precisely because it supports
*incremental* backup (§1) — the related-work canonical mitigation [8].
This ablation quantifies what that choice buys on our benchmark: a
full-snapshot backend serializes the entire keyed state every
checkpoint, inflating every flush phase and with it every ShadowSync
window.
"""

from repro.config import CheckpointConfig, ClusterConfig
from repro.stream import ConstantSource, StageSpec, StreamJob

from conftest import record


def run_mode(settings, incremental):
    job = StreamJob(
        stages=[
            StageSpec("s0", parallelism=64, state_entry_bytes=1000.0,
                      distinct_keys=60000, selectivity=1.0),
            StageSpec("s1", parallelism=64, state_entry_bytes=2500.0,
                      distinct_keys=10000, selectivity=0.01),
        ],
        source=ConstantSource(60000.0),
        cluster=ClusterConfig(num_nodes=4, cores_per_node=16),
        checkpoint=CheckpointConfig(interval_s=8.0, first_at_s=8.0,
                                    incremental=incremental),
        seed=settings.seed,
    )
    return job.run(settings.duration_s)


def test_incremental_checkpoints_matter(benchmark, settings):
    def experiment():
        inc = run_mode(settings, incremental=True)
        full = run_mode(settings, incremental=False)
        return inc, full

    inc, full = benchmark.pedantic(experiment, rounds=1, iterations=1)
    inc_tail = inc.tail_summary(start=settings.warmup_s)
    full_tail = full.tail_summary(start=settings.warmup_s)
    inc_bytes = sum(r.bytes for r in inc.coordinator.completed) / 1e9
    full_bytes = sum(r.bytes for r in full.coordinator.completed) / 1e9
    record("Ablation E", "p99.9 incremental vs full snapshot [s]",
           "(why [8] is canonical)",
           f"{inc_tail['p999']:.2f} vs {full_tail['p999']:.2f}")
    record("Ablation E", "checkpoint volume incremental vs full [GB]",
           "(not in paper)", f"{inc_bytes:.1f} vs {full_bytes:.1f}")

    # the tail only worsens modestly here (compaction bursts, which full
    # snapshots do not change, still dominate), but the checkpoint
    # volume explodes — the cost [8] exists to avoid
    assert full_tail["p999"] > inc_tail["p999"]
    assert full_bytes > 2.5 * inc_bytes
    # ... and yet ShadowSync exists even with incremental checkpoints —
    # the paper's whole point (§7: "the periodic overlapped mode still
    # exists")
    assert inc_tail["p999"] > 1.5