"""Benchmark-suite plumbing.

Each benchmark regenerates one table/figure via
:mod:`repro.experiments.figures`, asserts the paper's *shape* criteria,
and records a paper-vs-measured row that is printed in the terminal
summary (and lands in ``bench_output.txt`` when run under ``tee``).
"""

from __future__ import annotations

from typing import List

import pytest

#: (experiment, quantity, paper, measured) rows collected during the run.
COMPARISON_ROWS: List[tuple] = []


def record(experiment: str, quantity: str, paper: str, measured: str) -> None:
    COMPARISON_ROWS.append((experiment, quantity, paper, str(measured)))


@pytest.fixture(scope="session")
def settings():
    from repro.experiments import ExperimentSettings

    return ExperimentSettings()


def pytest_terminal_summary(terminalreporter):
    if not COMPARISON_ROWS:
        return
    terminalreporter.write_sep("=", "paper vs measured")
    widths = [
        max(len(str(row[i])) for row in COMPARISON_ROWS + [HEADER])
        for i in range(4)
    ]
    for row in [HEADER] + COMPARISON_ROWS:
        terminalreporter.write_line(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )


HEADER = ("experiment", "quantity", "paper", "measured")
