"""Figure 13: flush-thread-pool sweep.

Paper: the best allocation equals the CPU core count (16); severe
under-allocation serializes the stop-the-world phase (catastrophic at
1 thread), and over-allocation (64 = 4x cores) pays locking overhead.
"""

from repro.experiments import fig13_flush_thread_sweep

from conftest import record


def test_fig13(benchmark, settings):
    out = benchmark.pedantic(
        fig13_flush_thread_sweep, args=(), kwargs={"settings": settings},
        rounds=1, iterations=1,
    )
    rows = {r["flush_threads"]: r["p999"] for r in out["rows"]}
    record("Fig 13", "best flush threads", "16 (= cores)",
           str(out["best_flush_threads"]))
    record("Fig 13", "p99.9 at 1/16/64 threads", "catastrophic/best/worse",
           f"{rows[1]:.2f}/{rows[16]:.2f}/{rows[64]:.2f}")

    assert rows[1] > 5.0 * rows[16]       # 1 thread is catastrophic
    assert rows[4] > rows[16]             # under-allocation hurts
    assert rows[64] > rows[16]            # over-allocation hurts
    assert 8 <= out["best_flush_threads"] <= 32  # knee at ~cores
