"""Figure 6: point-in-time analysis — CPU saturation, message queues and
flush/compaction concurrency co-occur at the latency spikes.

Paper: worker CPU hits 100 % exactly when flush and compaction
concurrency spike together, producing the queue build-ups behind the
three latency spikes.
"""

import numpy as np

from repro.experiments import fig6_point_in_time

from conftest import record


def test_fig6(benchmark, settings):
    out = benchmark.pedantic(
        fig6_point_in_time, args=(settings,), rounds=1, iterations=1
    )
    assert out["spikes"], "no latency spikes detected"
    saturated = out["cpu_saturated_fraction_at_spikes"]
    record("Fig 6", "CPU ~100% at spikes", "yes",
           f"{sum(1 for f in saturated if f > 0.15)}/{len(saturated)} spikes")
    assert all(fraction > 0.1 for fraction in saturated)

    comp_t, comp = out["compaction_concurrency"]
    comp = np.asarray(comp)
    comp_t = np.asarray(comp_t)
    record("Fig 6", "peak compaction concurrency", "64", f"{comp.max():.0f}")
    assert comp.max() >= 64

    queues_t, q0, q1 = out["queues"]
    q0 = np.asarray(q0)
    queues_t = np.asarray(queues_t)
    for spike_time, _peak in out["spikes"]:
        window = (queues_t >= spike_time - 3.0) & (queues_t <= spike_time + 3.0)
        assert q0[window].max() > 10 * max(np.median(q0), 1.0), (
            "no queue build-up at spike"
        )
