"""Figure 12: compaction-delay sweep.

Paper: 1000 ms (≈ the measured drain-out time T of Eq. 2) achieves the
lowest tail, performance is flat to 3000 ms, and 8000 ms — the
checkpoint interval — regresses because the delayed compactions collide
with the *next* checkpoint's flushes.
"""

from repro.experiments import fig12_delay_sweep

from conftest import record


def test_fig12(benchmark, settings):
    out = benchmark.pedantic(
        fig12_delay_sweep, args=(), kwargs={"settings": settings},
        rounds=1, iterations=1,
    )
    rows = {r["delay_s"]: r["p999"] for r in out["rows"]}
    record("Fig 12", "best delay [ms]", "1000-3000",
           f"{out['best_delay_s'] * 1000:.0f}")
    record("Fig 12", "p99.9 at 0.1/1.0/8.0 s delay", "high/low/high",
           f"{rows[0.1]:.2f}/{rows[1.0]:.2f}/{rows[8.0]:.2f}")

    assert 0.5 <= out["best_delay_s"] <= 3.0
    assert rows[1.0] < rows[0.1]          # too-short delay is worse
    assert rows[1.0] < rows[8.0]          # wrap-around delay is worse
    assert rows[3.0] < 1.25 * rows[1.0]   # flat plateau through 3000 ms
