"""Figure 14: compaction-thread-pool sweep.

Paper: 4 threads is best on a 16-core node at ~75 % utilization; the
tail at 1 thread reaches minutes (compaction cannot keep up — L0 write
stalls), and 8/16 threads recreate the full CPU contention.
"""

from repro.experiments import fig14_compaction_thread_sweep

from conftest import record


def test_fig14(benchmark, settings):
    out = benchmark.pedantic(
        fig14_compaction_thread_sweep, args=(), kwargs={"settings": settings},
        rounds=1, iterations=1,
    )
    rows = {r["compaction_threads"]: r["p999"] for r in out["rows"]}
    record("Fig 14", "best compaction threads", "4",
           str(out["best_compaction_threads"]))
    record("Fig 14", "p99.9 at 1/4/16 threads", "minutes/best/high",
           f"{rows[1]:.1f}/{rows[4]:.2f}/{rows[16]:.2f}")

    assert rows[1] > 4.0                   # divergent (grows with run length)
    assert rows[16] > 2.5 * rows[4]        # default 16 is far worse than 4
    assert rows[8] > rows[4]               # past the knee
    assert out["best_compaction_threads"] in (2, 4)
