"""Figures 1 & 3: periodic latency spikes on the unmitigated system.

Paper: a 0.2–0.4 s latency floor with >1 s spikes recurring every 32 s
(the LCM of the per-stage flush and compaction periods), three spikes
in the 150–220 s window alternating between stages.
"""

import pytest

from repro.experiments import fig1_fig3_baseline_timeline

from conftest import record


def test_fig1_fig3(benchmark, settings):
    out = benchmark.pedantic(
        fig1_fig3_baseline_timeline, args=(settings,), rounds=1, iterations=1
    )
    record("Fig 1/3", "latency floor [s]", "0.2-0.4", f"{out['floor_s']:.2f}")
    record("Fig 1/3", "spike period [s]", "32", f"{out['spike_period_s']:.0f}")
    peaks = [p for _t, p in out["spikes"]]
    record("Fig 1/3", "spike peaks [s]", ">1",
           f"{min(peaks):.2f}-{max(peaks):.2f}")

    assert 0.15 <= out["floor_s"] <= 0.5
    assert out["spike_period_s"] == pytest.approx(32.0, abs=3.0)
    assert len(out["spikes"]) >= 3
    assert max(peaks) > 1.0
