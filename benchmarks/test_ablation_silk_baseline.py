"""Ablation: a SILK-style I/O scheduler vs the paper's desynchronization.

The paper's related-work claim (§7): single-store schedulers like SILK
[3] reduce the *intensity* of the internal bursts, "however, the
periodic overlapped mode (i.e., ShadowSync) … still exists".  We test
exactly that:

* SILK-like scheduling (flush priority + throttled compaction pool)
  does improve tails substantially over the baseline — conceded;
* but the compaction bursts remain synchronized on every 4th checkpoint
  (the overlap pattern persists), whereas the §4 solution spreads them;
* and under a compaction-heavier workload the throttled pool falls
  behind (L0 debt, write stalls) while the desynchronized solution,
  which keeps the full pool, does not.
"""

from repro.apps import build_traffic_job
from repro.config import CostModel
from repro.core import MitigationPlan, SilkPolicy, install_silk_pauses

from conftest import record


def run(settings, plan=None, silk=None, cost=None):
    job = build_traffic_job(
        checkpoint_interval_s=8.0, initial_l0="aligned", seed=settings.seed,
        mitigation=plan, cost=cost,
    )
    if silk is not None:
        install_silk_pauses(job, silk)
    result = job.run(settings.duration_s)
    return job, result


def concentration(result, warmup):
    """Largest share of compactions *scheduled* in a single checkpoint.

    Bucketed by submission time: SILK's small pool queues the jobs, so
    execution smears — but the trigger synchronization (ShadowSync's
    root) is visible in when they were scheduled.
    """
    counts = result.spans.per_cycle_counts(
        result.coordinator.checkpoint_times(), kind="compaction", by="submit"
    )
    total = sum(counts.values())
    return max(counts.values()) / total if total else 0.0


def test_silk_reduces_intensity_but_not_synchronization(benchmark, settings):
    def experiment():
        silk_policy = SilkPolicy()
        _job, base = run(settings)
        _job, silk = run(settings, plan=silk_policy.as_mitigation_plan(),
                         silk=silk_policy)
        _job, solution = run(settings, plan=MitigationPlan.paper_solution())
        return base, silk, solution

    base, silk, solution = benchmark.pedantic(experiment, rounds=1, iterations=1)
    p999 = {
        "baseline": base.tail_summary(start=settings.warmup_s)["p999"],
        "silk": silk.tail_summary(start=settings.warmup_s)["p999"],
        "solution": solution.tail_summary(start=settings.warmup_s)["p999"],
    }
    conc = {
        "silk": concentration(silk, settings.warmup_s),
        "solution": concentration(solution, settings.warmup_s),
    }
    record("Ablation D", "p99.9 baseline/SILK/solution [s]",
           "SILK helps, §7", f"{p999['baseline']:.2f}/{p999['silk']:.2f}/"
           f"{p999['solution']:.2f}")
    record("Ablation D", "burst concentration SILK vs solution",
           "sync persists under SILK",
           f"{conc['silk']:.0%} vs {conc['solution']:.0%}")

    assert p999["silk"] < 0.6 * p999["baseline"]      # intensity reduced
    assert conc["silk"] > 2.0 * conc["solution"]      # sync NOT removed
    assert p999["solution"] <= p999["silk"] * 1.05    # solution >= SILK


def test_silk_falls_behind_on_heavier_compaction(benchmark, settings):
    heavy = CostModel(compaction_cpu_seconds_per_mb=0.7)

    def experiment():
        silk_policy = SilkPolicy()
        silk_job, silk = run(settings, plan=silk_policy.as_mitigation_plan(),
                             silk=silk_policy, cost=heavy)
        sol_job, solution = run(settings,
                                plan=MitigationPlan.paper_solution(),
                                cost=heavy)
        return silk_job, silk, sol_job, solution

    silk_job, silk, sol_job, solution = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    silk_tail = silk.tail_summary(start=settings.warmup_s)["p999"]
    sol_tail = solution.tail_summary(start=settings.warmup_s)["p999"]
    record("Ablation D", "heavy-compaction p99.9 SILK vs solution [s]",
           "throttled pool falls behind",
           f"{silk_tail:.2f} vs {sol_tail:.2f}")
    record("Ablation D", "heavy-compaction write stalls SILK vs solution",
           "(not in paper)",
           f"{silk_job.backend.write_stall_events} vs "
           f"{sol_job.backend.write_stall_events}")
    assert silk_tail > sol_tail
    assert silk_job.backend.write_stall_events >= sol_job.backend.write_stall_events