"""Figure 15: inferring the compaction allocation with Kneedle.

Paper: binning 50 ms windows by observed compaction-thread concurrency
and plotting mean tail latency yields a curve whose knee (via Kneedle)
is 4 — consistent with Figure 14's brute-force best allocation, at a
fraction of the experimentation cost.
"""

from repro.experiments import fig15_kneedle

from conftest import record


def test_fig15(benchmark, settings):
    out = benchmark.pedantic(
        fig15_kneedle, args=(settings,), rounds=1, iterations=1
    )
    record("Fig 15", "Kneedle knee (recommended threads)", "4",
           str(out["recommended_threads"]))
    # Known deviation (EXPERIMENTS.md): in our fair-share CPU model the
    # 50 ms windows only show degradation beyond ~8 concurrent
    # compactions, so the knee lands above the paper's 4 — but still
    # far below the harmful default of 16, and the qualitative
    # recommendation ("cap the pool near the CPU headroom") stands.
    assert 2 <= out["recommended_threads"] <= 10

    levels = out["levels"]
    means = out["mean_p999"]
    assert len(levels) >= 5, "not enough concurrency variety observed"
    # latency at the highest observed concurrency clearly exceeds the
    # idle-window latency — the rising branch past the knee
    low = means[levels.index(min(levels))]
    top = max(levels)
    high = max(means[i] for i, l in enumerate(levels) if l >= top - 1)
    record("Fig 15", "latency low vs high concurrency [s]",
           "rising past knee", f"{low:.2f} vs {high:.2f}")
    assert high > 1.3 * low
