"""Ablation: other ShadowSync sources (§6 — the paper's future work).

The discussion section argues that JVM GC pauses and DVFS throttling
are further asynchronous events prone to overlapping with checkpoints.
This ablation injects GC pauses into the *mitigated* traffic job and
shows that (a) they create a new latency tail the LSM mitigations do
not address, and (b) the tail grows when the pauses correlate with
checkpoints — hidden synchronization again.
"""

from repro.apps import build_traffic_job
from repro.core import MitigationPlan
from repro.sim import GcPauseInjector

from conftest import record


def run_with_gc(settings, gc=None):
    job = build_traffic_job(
        checkpoint_interval_s=8.0,
        initial_l0="aligned",
        seed=settings.seed,
        mitigation=MitigationPlan.paper_solution(),
    )
    if gc is not None:
        for node in job.nodes:
            gc.install(job.sim, node.cpu)
        job.coordinator.on_trigger.append(gc.note_checkpoint)
    return job.run(settings.duration_s).tail_summary(start=settings.warmup_s)


def test_gc_pauses_reintroduce_tail(benchmark, settings):
    def experiment():
        quiet = run_with_gc(settings, None)
        uncorrelated = run_with_gc(
            settings,
            GcPauseInjector(interval_s=17.3, pause_s=0.35, jitter=0.3),
        )
        return quiet, uncorrelated

    quiet, with_gc = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record("Ablation C", "mitigated p99.9 without/with GC [s]",
           "(§6, future work)", f"{quiet['p999']:.2f} / {with_gc['p999']:.2f}")
    # GC pauses create a tail the LSM mitigations cannot remove
    assert with_gc["p999"] > 1.2 * quiet["p999"]
    assert with_gc["max"] > quiet["max"]
