"""Ablation: other ShadowSync sources (§6 — the paper's future work).

The discussion section argues that JVM GC pauses and DVFS throttling
are further asynchronous events prone to overlapping with checkpoints.
This ablation injects periodic stop-the-world pauses (spawned
:func:`repro.faults.capacity.capacity_dip` processes) into the
*mitigated* traffic job and shows that they create a new latency tail
the LSM mitigations do not address — hidden synchronization again.
"""

from repro.apps import build_traffic_job
from repro.core import MitigationPlan
from repro.faults.capacity import capacity_dip
from repro.sim.process import spawn

from conftest import record


def gc_pauses(job, interval_s=17.3, pause_s=0.35, jitter=0.3, first_at_s=5.0):
    """Periodic stop-the-world GC pauses on every node of *job*."""
    sim = job.sim

    def loop(node):
        rng = sim.rng.stream(f"gc/{node.name}")
        yield first_at_s
        while True:
            spawn(sim, capacity_dip(sim, node.cpu, 0.0, pause_s))
            wait = interval_s * (1.0 + jitter * (2.0 * rng.random() - 1.0))
            yield max(wait, pause_s)

    for node in job.nodes:
        spawn(sim, loop(node), name=f"gc-injector-{node.name}")


def run_with_gc(settings, gc=False):
    job = build_traffic_job(
        checkpoint_interval_s=8.0,
        initial_l0="aligned",
        seed=settings.seed,
        mitigation=MitigationPlan.paper_solution(),
    )
    if gc:
        gc_pauses(job)
    return job.run(settings.duration_s).tail_summary(start=settings.warmup_s)


def test_gc_pauses_reintroduce_tail(benchmark, settings):
    def experiment():
        quiet = run_with_gc(settings, gc=False)
        with_pauses = run_with_gc(settings, gc=True)
        return quiet, with_pauses

    quiet, with_gc = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record("Ablation C", "mitigated p99.9 without/with GC [s]",
           "(§6, future work)", f"{quiet['p999']:.2f} / {with_gc['p999']:.2f}")
    # GC pauses create a tail the LSM mitigations cannot remove
    assert with_gc["p999"] > 1.2 * quiet["p999"]
    assert with_gc["max"] > quiet["max"]
