"""Figure 20: WordCount on NVMe SSDs.

Paper: the NVMe baseline is worse than the tmpfs baseline (flush I/O is
no longer free), and the mitigations still remove the ShadowSync
spikes.
"""

from repro.experiments import fig17_wordcount_tails, fig20_wordcount_nvme

from conftest import record


def test_fig20(benchmark, settings):
    out = benchmark.pedantic(
        fig20_wordcount_nvme, args=(settings,), rounds=1, iterations=1
    )
    tmpfs = fig17_wordcount_tails(settings)
    nvme_base = out["baseline"]["tails"]["p999"]
    tmpfs_base = tmpfs["baseline"]["tails"]["p999"]
    sol = out["solution"]["tails"]["p999"]
    record("Fig 20", "NVMe vs tmpfs baseline p99.9 [s]", "worse on NVMe",
           f"{nvme_base:.2f} vs {tmpfs_base:.2f}")
    record("Fig 20", "NVMe p99.9 solution [s]", "improved", f"{sol:.2f}")
    assert nvme_base > tmpfs_base             # I/O makes it worse
    assert sol < 0.7 * nvme_base              # mitigation still works
