"""Figure 7: zoom into one burst — flushes are short and numerous,
compactions long-lived.

Paper: 128 flush segments finish fast (stop-the-world, in-memory) while
the 64 compaction segments last much longer because 16 compaction
threads chew through them while contending for CPU.
"""

from repro.experiments import fig7_zoom_spans

from conftest import record


def test_fig7(benchmark, settings):
    out = benchmark.pedantic(
        fig7_zoom_spans, args=(settings,), rounds=1, iterations=1
    )
    n_flush = len(out["flush_spans"])
    n_comp = len(out["compaction_spans"])
    record("Fig 7", "flush spans in window", "128(+1)", str(n_flush))
    record("Fig 7", "compaction spans in window", "64", str(n_comp))
    record(
        "Fig 7",
        "mean durations flush vs compaction [s]",
        "flush << compaction",
        f"{out['mean_flush_s']:.2f} vs {out['mean_compaction_s']:.2f}",
    )
    assert n_flush >= 128
    assert n_comp >= 64
    assert out["mean_compaction_s"] > 3.0 * out["mean_flush_s"]
