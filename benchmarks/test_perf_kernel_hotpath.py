"""Perf smoke: kernel hot-path microbenchmarks with a regression gate.

Two throughput probes bracket the optimized run loop:

* **dispatch** — a bare :class:`~repro.sim.kernel.Simulator` driving
  self-rescheduling callbacks: pure event-loop overhead (heap tuple
  ordering, lazy cancellation, GC suspension), no model code;
* **traffic** — the standard traffic job, whose event mix (vectorized
  fluid reallocations, coalesced accounting ticks, LSM work) is the
  sweep benchmark's per-point cost.

Medians of several reps land in ``BENCH_kernel_hotpath.json``.  The
previously checked-in numbers act as the baseline: when
``REPRO_PERF_GATE=1`` (set by the CI perf-smoke job, which measures on
the same runner class) a drop of more than 20 % in either throughput
fails the run.  Unset, the gate only reports — absolute events/s are
machine-dependent, so local boxes refresh the record without flaking.
"""

import json
import os
import time
from pathlib import Path

from repro.experiments import ExperimentSettings
from repro.experiments.runner import run_traffic
from repro.sim.kernel import Simulator

from conftest import record

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel_hotpath.json"

#: Allowed throughput drop vs the checked-in baseline before the gated
#: run fails (the regression gate of the CI perf-smoke job).
REGRESSION_TOLERANCE = 0.20

DISPATCH_EVENTS = 200_000
TRAFFIC_DURATION_S = 60.0
REPS = 3


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _bench_dispatch() -> float:
    """Pure dispatch throughput (events/s): no model work per event."""

    def run_once() -> float:
        sim = Simulator(seed=1)
        remaining = [DISPATCH_EVENTS]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(sim.now + 0.001, tick)

        sim.schedule(0.0, tick)
        t0 = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - t0
        assert sim.events_fired == DISPATCH_EVENTS
        return DISPATCH_EVENTS / elapsed

    return _median([run_once() for _ in range(REPS)])


def _bench_traffic() -> tuple:
    """Traffic-job throughput (events/s) and wall seconds per run."""
    settings = ExperimentSettings(
        duration_s=TRAFFIC_DURATION_S, warmup_s=16.0, seed=1
    )

    def run_once() -> tuple:
        t0 = time.perf_counter()
        result = run_traffic(settings=settings)
        elapsed = time.perf_counter() - t0
        return result.job.sim.events_fired / elapsed, elapsed

    runs = [run_once() for _ in range(REPS)]
    return (_median([r[0] for r in runs]), _median([r[1] for r in runs]))


def test_kernel_hotpath_perf():
    baseline = {}
    if BENCH_PATH.exists():
        baseline = json.loads(BENCH_PATH.read_text())

    dispatch_eps = _bench_dispatch()
    traffic_eps, traffic_wall = _bench_traffic()

    record("Perf", "kernel dispatch [events/s]", "-", f"{dispatch_eps:,.0f}")
    record("Perf", f"traffic {TRAFFIC_DURATION_S:.0f}s run [events/s]", "-",
           f"{traffic_eps:,.0f}")
    record("Perf", "traffic run wall [s]", "-", f"{traffic_wall:.2f}")

    gate = os.environ.get("REPRO_PERF_GATE") == "1"
    floor = 1.0 - REGRESSION_TOLERANCE
    for key, measured in (("dispatch_events_per_s", dispatch_eps),
                          ("traffic_events_per_s", traffic_eps)):
        base = baseline.get(key)
        if not base:
            continue
        ratio = measured / base
        record("Perf", f"{key} vs baseline",
               f">= {floor:.0%}" if gate else "report-only", f"{ratio:.0%}")
        if gate:
            assert ratio >= floor, (
                f"{key} regressed: {measured:,.0f} events/s vs baseline "
                f"{base:,.0f} ({ratio:.0%} < {floor:.0%})"
            )

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "kernel_hotpath",
        "dispatch_events": DISPATCH_EVENTS,
        "traffic_duration_s": TRAFFIC_DURATION_S,
        "reps": REPS,
        "cores": os.cpu_count() or 1,
        "dispatch_events_per_s": round(dispatch_eps),
        "traffic_events_per_s": round(traffic_eps),
        "traffic_wall_s": round(traffic_wall, 3),
    }, indent=2) + "\n")
