"""Figure 16: traffic job, baseline vs the §4 solution.

Paper: baseline spikes exceed 2 s; with the randomized trigger + 1 s
delay all p99.9 spikes drop below ~0.5 s, and the compaction activity
spreads evenly over the 4-checkpoint cycle instead of synchronizing.
"""

from repro.experiments import fig16_traffic_mitigation

from conftest import record


def test_fig16(benchmark, settings):
    out = benchmark.pedantic(
        fig16_traffic_mitigation, args=(settings,), rounds=1, iterations=1
    )
    base_peak = out["baseline"]["peak_p999"]
    sol_peak = out["solution"]["peak_p999"]
    record("Fig 16", "peak p99.9 baseline -> solution [s]", ">2 -> <0.5",
           f"{base_peak:.2f} -> {sol_peak:.2f}")
    assert base_peak > 1.8
    assert sol_peak < 0.45 * base_peak

    base_cc = out["baseline"]["compaction_concurrency_peak"]
    sol_cc = out["solution"]["compaction_concurrency_peak"]
    record("Fig 16", "peak compaction concurrency", "128 -> spread",
           f"{base_cc:.0f} -> {sol_cc:.0f}")
    assert base_cc >= 96
    assert sol_cc <= 0.7 * base_cc

    # compactions spread over (almost) every checkpoint in the solution
    base_busy = sum(
        1 for counts in out["baseline"]["per_checkpoint_compactions"].values()
        if sum(counts.values()) > 0
    )
    sol_busy = sum(
        1 for counts in out["solution"]["per_checkpoint_compactions"].values()
        if sum(counts.values()) > 0
    )
    record("Fig 16", "checkpoints with compactions", "1 in 4 -> all",
           f"{base_busy} -> {sol_busy}")
    assert sol_busy > 2 * base_busy
