"""Figure 18: WordCount fine-grained timelines.

Paper: baseline windows reach multi-second p99.9 under overlapping
flush+compaction bursts; the solution desynchronizes them, keeping every
window's p99.9 well below the baseline peaks.
"""


from repro.experiments import fig18_wordcount_timeline

from conftest import record


def test_fig18(benchmark, settings):
    out = benchmark.pedantic(
        fig18_wordcount_timeline, args=(settings,), rounds=1, iterations=1
    )
    base_t, base_p = out["baseline"]["timeline"]
    sol_t, sol_p = out["solution"]["timeline"]
    base_peak, sol_peak = max(base_p), max(sol_p)
    record("Fig 18", "window p99.9 peak baseline -> solution [s]",
           "3 -> <2", f"{base_peak:.2f} -> {sol_peak:.2f}")
    assert base_peak > 1.0
    assert sol_peak < 0.75 * base_peak

    base_overlap = out["baseline"]["overlap"]["flush_compaction_overlap_s"]
    sol_overlap = out["solution"]["overlap"]["flush_compaction_overlap_s"]
    record("Fig 18", "flush+compaction overlap [s]", "reduced",
           f"{base_overlap:.1f} -> {sol_overlap:.1f}")
    assert sol_overlap < base_overlap
