"""Ablation: decompose the §4.1 solution into its two techniques.

DESIGN.md §6 calls for this: how much of the improvement comes from the
randomized trigger, how much from the delay, and does the combination
beat either alone?  (The paper only evaluates the combination.)
"""

from repro.core import MitigationPlan
from repro.experiments import run_traffic

from conftest import record


def test_mitigation_decomposition(benchmark, settings):
    def sweep():
        plans = {
            "baseline": MitigationPlan.baseline(),
            "random-only": MitigationPlan(randomize_compaction_trigger=True),
            "delay-only": MitigationPlan(compaction_delay_s=1.0),
            "both": MitigationPlan.paper_solution(),
        }
        return {
            name: run_traffic(mitigation=plan, settings=settings).tail_summary(
                start=settings.warmup_s
            )
            for name, plan in plans.items()
        }

    tails = benchmark.pedantic(sweep, rounds=1, iterations=1)
    p999 = {name: t["p999"] for name, t in tails.items()}
    record("Ablation A", "p99.9 base/random/delay/both [s]", "(not in paper)",
           "/".join(f"{p999[k]:.2f}" for k in
                    ("baseline", "random-only", "delay-only", "both")))

    # each technique alone helps; randomization is the bigger lever
    assert p999["random-only"] < 0.75 * p999["baseline"]
    assert p999["delay-only"] < p999["baseline"]
    assert p999["random-only"] < p999["delay-only"]
    # the combination is at least as good as the best single technique
    assert p999["both"] <= 1.05 * min(p999["random-only"], p999["delay-only"])


def test_trigger_spread_width(benchmark, settings):
    """Wider α windows spread compactions over more checkpoints; the
    paper's choice (spread = cycle length = 4) already captures most of
    the benefit."""

    def sweep():
        out = {}
        for spread in (1, 2, 4, 8):
            plan = MitigationPlan(
                randomize_compaction_trigger=True,
                trigger_spread=spread,
                compaction_delay_s=1.0,
            )
            out[spread] = run_traffic(
                mitigation=plan, settings=settings
            ).tail_summary(start=settings.warmup_s)["p999"]
        return out

    p999 = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("Ablation B", "p99.9 at spread 1/2/4/8", "(not in paper)",
           "/".join(f"{p999[s]:.2f}" for s in (1, 2, 4, 8)))
    # spread=1 is a deterministic trigger: the burst stays synchronized
    assert p999[4] < 0.7 * p999[1]
    # beyond the cycle length there is no further desynchronization to
    # gain, while each compaction's input grows (more L0 files pile up
    # under the higher trigger), so spread=8 regresses somewhat — but
    # stays far better than no randomization at all
    assert p999[8] < p999[1]
    assert p999[8] < 1.6 * p999[4]
