"""Figure 19: traffic job on NVMe SSDs.

Paper: the statistical ShadowSync persists when SSTables live on NVMe
(baseline p99.9 up to 2.3 s), and the mitigations remain effective.
Known deviation (see EXPERIMENTS.md): our device model staggers the
burst slightly, so the NVMe baseline lands *near* the tmpfs baseline
instead of strictly above it.
"""

from repro.experiments import fig19_traffic_nvme

from conftest import record


def test_fig19(benchmark, settings):
    out = benchmark.pedantic(
        fig19_traffic_nvme, args=(settings,), rounds=1, iterations=1
    )
    base = out["baseline"]["tails"]["p999"]
    sol = out["solution"]["tails"]["p999"]
    record("Fig 19", "NVMe p99.9 baseline [s]", "2.3", f"{base:.2f}")
    record("Fig 19", "NVMe p99.9 solution [s]", "<0.5x baseline", f"{sol:.2f}")
    assert base > 1.4                         # multi-second-class tail persists
    assert sol < 0.6 * base                   # mitigation still works on SSD
    assert out["reduction_p95"] < 0.6
