"""Figure 8: statistical ShadowSync — aligned L0 counters put both
stages' compaction bursts into the same checkpoint.

Paper: with the 8 s checkpoint interval and aligned initial conditions,
spikes exceed 2 s and recur in a 32 s (4-checkpoint) cycle, with the
majority of compactions from *both* stages overlapping in one
checkpoint period.
"""

import pytest

from repro.experiments import fig8_statistical

from conftest import record


def test_fig8(benchmark, settings):
    out = benchmark.pedantic(
        fig8_statistical, args=(settings,), rounds=1, iterations=1
    )
    peaks = [p for _t, p in out["spikes"]]
    record("Fig 8", "max spike [s]", ">2", f"{max(peaks):.2f}")
    record("Fig 8", "spike period [s]", "32", f"{out['spike_period_s']:.0f}")
    assert max(peaks) > 1.8
    assert out["spike_period_s"] == pytest.approx(32.0, abs=3.0)

    joint = [
        counts
        for counts in out["per_checkpoint_compactions"].values()
        if counts.get("s0", 0) >= 32 and counts.get("s1", 0) >= 32
    ]
    record("Fig 8", "joint s0+s1 bursts", "every 4th CP", f"{len(joint)} periods")
    assert len(joint) >= 2
