"""Figure 17: WordCount tails, baseline vs solution.

Paper: baseline p99.9 ≈ 1.3 s, solution ≈ 0.7 s on a single 16-core
Kafka Streams node at ~70 % CPU.
"""

from repro.experiments import fig17_wordcount_tails

from conftest import record


def test_fig17(benchmark, settings):
    out = benchmark.pedantic(
        fig17_wordcount_tails, args=(settings,), rounds=1, iterations=1
    )
    base = out["baseline"]["tails"]["p999"]
    sol = out["solution"]["tails"]["p999"]
    record("Fig 17", "p99.9 baseline [s]", "1.3", f"{base:.2f}")
    record("Fig 17", "p99.9 solution [s]", "0.7", f"{sol:.2f}")
    assert 0.9 <= base <= 1.8
    assert sol < 0.75 * base
    assert sol < 0.9
